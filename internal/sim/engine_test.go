package sim

import (
	"testing"
	"time"
)

func TestEngineSleepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var woke time.Duration
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		woke = p.Now()
	})
	e.Run()
	if woke != 10*time.Millisecond {
		t.Fatalf("woke at %v, want 10ms", woke)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("engine now %v, want 10ms", e.Now())
	}
}

func TestEngineOrderingIsDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var order []string
		e.At(5*time.Millisecond, "b", func(p *Proc) { order = append(order, "b") })
		e.At(1*time.Millisecond, "a", func(p *Proc) { order = append(order, "a") })
		e.At(5*time.Millisecond, "c", func(p *Proc) { order = append(order, "c") })
		e.Go("d", func(p *Proc) {
			order = append(order, "d0")
			p.Sleep(2 * time.Millisecond)
			order = append(order, "d2")
		})
		e.Run()
		return order
	}
	want := []string{"d0", "a", "d2", "b", "c"}
	for i := 0; i < 5; i++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("run %d: got %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: got %v, want %v", i, got, want)
			}
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, "p", func(p *Proc) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestEngineAfterCallback(t *testing.T) {
	e := NewEngine(1)
	fired := time.Duration(-1)
	e.After(7*time.Millisecond, func() { fired = e.Now() })
	e.Run()
	if fired != 7*time.Millisecond {
		t.Fatalf("callback fired at %v", fired)
	}
}

func TestRunUntilStopsAndAdvances(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Second)
			count++
		}
	})
	e.RunUntil(10 * time.Second)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("now = %v, want 10s", e.Now())
	}
	// Remaining events still runnable.
	e.RunUntil(15 * time.Second)
	if count != 15 {
		t.Fatalf("count = %d after second window, want 15", count)
	}
}

func TestRunUntilAdvancesPastLastEvent(t *testing.T) {
	e := NewEngine(1)
	e.Go("quick", func(p *Proc) { p.Sleep(time.Millisecond) })
	e.RunUntil(time.Hour)
	if e.Now() != time.Hour {
		t.Fatalf("now = %v, want 1h", e.Now())
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	e := NewEngine(1)
	var sig Signal
	woke := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			sig.Wait(p)
			woke++
		})
	}
	e.Go("broadcaster", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if sig.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", sig.Waiters())
		}
		sig.Broadcast(e)
	})
	e.Run()
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	e := NewEngine(1)
	var sig Signal
	cleanups := 0
	for i := 0; i < 4; i++ {
		e.Go("stuck", func(p *Proc) {
			defer func() { cleanups++ }()
			sig.Wait(p) // never broadcast
		})
	}
	e.RunUntil(time.Second)
	e.Shutdown()
	if cleanups != 4 {
		t.Fatalf("cleanups = %d, want 4 (deferred funcs must run on shutdown)", cleanups)
	}
}

func TestYieldLetsSameTimeEventsRun(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Go("first", func(p *Proc) {
		order = append(order, "first-a")
		p.Yield()
		order = append(order, "first-b")
	})
	e.Go("second", func(p *Proc) { order = append(order, "second") })
	e.Run()
	want := []string{"first-a", "second", "first-b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewEngine(7).Rand().Int63()
	b := NewEngine(7).Rand().Int63()
	if a != b {
		t.Fatalf("same seed produced different values: %d vs %d", a, b)
	}
	c := NewEngine(8).Rand().Int63()
	if a == c {
		t.Fatalf("different seeds produced identical first value")
	}
}

func TestAtInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Go("p", func(p *Proc) {
		p.Sleep(time.Second)
		defer func() {
			if recover() == nil {
				t.Errorf("At in the past did not panic")
			}
		}()
		e.At(0, "bad", func(p *Proc) {})
	})
	e.Run()
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine(1)
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Errorf("negative sleep did not panic")
			}
		}()
		p.Sleep(-time.Second)
	})
	e.Run()
}

func TestEngineEventsCounter(t *testing.T) {
	e := NewEngine(1)
	if e.Events() != 0 {
		t.Fatalf("fresh engine reports %d events, want 0", e.Events())
	}
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(time.Millisecond) // spawn event + wake event
	})
	e.After(2*time.Millisecond, func() {}) // one callback event
	e.Run()
	// spawn resume, sleep wake, callback = 3 executed events.
	if got := e.Events(); got != 3 {
		t.Fatalf("Events() = %d, want 3", got)
	}
	// Same-seed rerun executes the identical count: the counter is a
	// pure function of the deterministic schedule.
	e2 := NewEngine(1)
	e2.Go("sleeper", func(p *Proc) { p.Sleep(time.Millisecond) })
	e2.After(2*time.Millisecond, func() {})
	e2.Run()
	if e2.Events() != e.Events() {
		t.Fatalf("same-seed event counts differ: %d vs %d", e2.Events(), e.Events())
	}
}
