package sim

import (
	"strings"
	"testing"
	"time"
)

// Percentile edge cases pinned down explicitly: the empty histogram, a
// single sample, and linear interpolation between closest ranks.

func TestHistogramPercentileEmpty(t *testing.T) {
	h := &Histogram{}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	if h.N() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: N=%d Sum=%v Mean=%v", h.N(), h.Sum(), h.Mean())
	}
}

func TestHistogramPercentileSingleSample(t *testing.T) {
	h := &Histogram{}
	h.Add(42)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := h.Percentile(p); got != 42 {
			t.Fatalf("single-sample Percentile(%v) = %v, want 42", p, got)
		}
	}
}

func TestHistogramPercentileInterpolation(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{1, 2, 3, 4} {
		h.Add(v)
	}
	// p50 sits halfway between the 2nd and 3rd of four samples.
	if got := h.Percentile(50); got != 2.5 {
		t.Fatalf("p50 of [1,2,3,4] = %v, want 2.5", got)
	}

	big := &Histogram{}
	for i := 1; i <= 100; i++ {
		big.Add(float64(i))
	}
	// rank = p/100*(n-1): p99 of 1..100 interpolates 99/100 of the way
	// from 99 to 100.
	if got := big.Percentile(99); got < 99.0 || got > 100.0 {
		t.Fatalf("p99 of 1..100 = %v, want within [99,100]", got)
	}
	if got, want := big.Percentile(99), 99.01; absDiff(got, want) > 1e-9 {
		t.Fatalf("p99 of 1..100 = %v, want %v", got, want)
	}
	if got := big.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := big.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TraceLog ring: wrap-around ordering and drop accounting after the
// O(1) circular-buffer rewrite.

func TestTraceLogWrapOrderingAndDrops(t *testing.T) {
	l := NewTraceLog(4)
	for i := 0; i < 10; i++ {
		l.Record(time.Duration(i)*time.Millisecond, "resume", "p")
	}
	if got := l.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	got := l.Entries()
	if len(got) != 4 {
		t.Fatalf("retained %d entries, want 4", len(got))
	}
	for i, e := range got {
		want := time.Duration(6+i) * time.Millisecond
		if e.At != want {
			t.Fatalf("entry %d at %v, want %v (oldest-first order broken)", i, e.At, want)
		}
	}
}

func TestTraceLogBelowCapacityNoDrops(t *testing.T) {
	l := NewTraceLog(8)
	for i := 0; i < 5; i++ {
		l.Record(time.Duration(i), "callback", "after")
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", l.Dropped())
	}
	got := l.Entries()
	if len(got) != 5 {
		t.Fatalf("retained %d entries, want 5", len(got))
	}
	for i, e := range got {
		if e.At != time.Duration(i) {
			t.Fatalf("entry %d at %v, want %v", i, e.At, time.Duration(i))
		}
	}
}

func TestTraceLogWrapManyTimes(t *testing.T) {
	l := NewTraceLog(3)
	const n = 100
	for i := 0; i < n; i++ {
		l.Record(time.Duration(i), "spawn", "p")
	}
	if got := l.Dropped(); got != n-3 {
		t.Fatalf("dropped = %d, want %d", got, n-3)
	}
	got := l.Entries()
	for i, e := range got {
		if want := time.Duration(n - 3 + i); e.At != want {
			t.Fatalf("entry %d at %v, want %v", i, e.At, want)
		}
	}
}

func TestTraceLogStringMentionsDrops(t *testing.T) {
	l := NewTraceLog(2)
	for i := 0; i < 5; i++ {
		l.Record(time.Duration(i), "resume", "p")
	}
	s := l.String()
	if want := "3 earlier events dropped"; !strings.Contains(s, want) {
		t.Fatalf("String() = %q, want mention of %q", s, want)
	}
}
