package sim

// Queue is an unbounded FIFO channel between simulated processes:
// senders never block, receivers Park until an item arrives. It is the
// building block for dispatcher/worker structures (cluster schedulers,
// uffd handler daemons).
type Queue struct {
	name    string
	items   []any
	waiters []*Proc
	pushes  int64
	pops    int64
}

// NewQueue returns an empty queue.
func NewQueue(name string) *Queue {
	return &Queue{name: name}
}

// Len returns the queued item count.
func (q *Queue) Len() int { return len(q.items) }

// Waiting returns the number of parked receivers.
func (q *Queue) Waiting() int { return len(q.waiters) }

// Push enqueues an item, waking one parked receiver if any. It may be
// called from any simulated context (processes or After callbacks).
func (q *Queue) Push(e *Engine, item any) {
	q.items = append(q.items, item)
	q.pushes++
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		e.Resume(w)
	}
}

// Pop dequeues the oldest item, parking p until one is available.
// Receivers are served FIFO.
func (q *Queue) Pop(p *Proc) any {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.Park()
	}
	item := q.items[0]
	q.items = q.items[1:]
	q.pops++
	return item
}

// TryPop dequeues without blocking; ok is false when empty.
func (q *Queue) TryPop() (item any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	item = q.items[0]
	q.items = q.items[1:]
	q.pops++
	return item, true
}

// Stats returns lifetime pushes and pops.
func (q *Queue) Stats() (pushes, pops int64) { return q.pushes, q.pops }

// WaitGroup lets a simulated process wait for a set of tasks to finish.
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add registers delta tasks (may be negative via Done only).
func (wg *WaitGroup) Add(n int) {
	if n < 0 {
		panic("sim: WaitGroup.Add with negative delta; use Done")
	}
	wg.count += n
}

// Done marks one task complete, waking waiters at zero.
func (wg *WaitGroup) Done(e *Engine) {
	if wg.count == 0 {
		panic("sim: WaitGroup.Done without Add")
	}
	wg.count--
	if wg.count == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, w := range ws {
			e.Resume(w)
		}
	}
}

// Wait parks p until the count reaches zero (returns immediately if it
// already is).
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, p)
		p.Park()
	}
}

// Count returns outstanding tasks.
func (wg *WaitGroup) Count() int { return wg.count }
