package sandbox

import "fmt"

// MountKind identifies one mountpoint in a container's mount namespace.
type MountKind uint8

// The mount set of a standard container rootfs (§5.2.1: building one
// from scratch needs more than 9 mount, 6 mknod, and 1 pivot_root
// syscalls).
const (
	MountProc MountKind = iota
	MountSys
	MountDev
	MountDevPts
	MountShm
	MountMqueue
	MountCgroup
	MountTmp
	MountBaseUnion // the base overlayfs root (shared dependencies)
	MountFuncUnion // the function-specific overlay, overmounted on top
)

// String names the mount kind.
func (k MountKind) String() string {
	switch k {
	case MountProc:
		return "proc"
	case MountSys:
		return "sysfs"
	case MountDev:
		return "devtmpfs"
	case MountDevPts:
		return "devpts"
	case MountShm:
		return "shm"
	case MountMqueue:
		return "mqueue"
	case MountCgroup:
		return "cgroup2"
	case MountTmp:
		return "tmpfs"
	case MountBaseUnion:
		return "overlay(base)"
	case MountFuncUnion:
		return "overlay(func)"
	}
	return fmt.Sprintf("MountKind(%d)", uint8(k))
}

// Mount is one entry of a container's mount table.
type Mount struct {
	Kind     MountKind
	Path     string
	ReadOnly bool
}

// baseMounts returns the mount table of a freshly built container rootfs
// (everything except the function-specific overlay).
func baseMounts() []Mount {
	return []Mount{
		{MountBaseUnion, "/", false},
		{MountProc, "/proc", false},
		{MountSys, "/sys", true},
		{MountDev, "/dev", false},
		{MountDevPts, "/dev/pts", false},
		{MountShm, "/dev/shm", false},
		{MountMqueue, "/dev/mqueue", false},
		{MountCgroup, "/sys/fs/cgroup", true},
		{MountTmp, "/tmp", false},
	}
}

// Overlay is a function-specific overlayfs: a read-only lower layer with
// the function's dependencies, and a writable upper directory recording
// the running instance's file modifications (which must be purged before
// the sandbox can serve anyone else).
type Overlay struct {
	Function   string
	UpperFiles int
	UpperBytes int64
	Mounted    bool
}

// RecordWrite notes files written by the current occupant.
func (o *Overlay) RecordWrite(files int, bytes int64) {
	if files < 0 || bytes < 0 {
		panic("sandbox: negative overlay write")
	}
	o.UpperFiles += files
	o.UpperBytes += bytes
}

// Purge deletes everything in the upper directory (and, in the real
// system, remounts to flush stale inode caches).
func (o *Overlay) Purge() {
	o.UpperFiles = 0
	o.UpperBytes = 0
}

// Dirty reports whether the upper directory holds residue.
func (o *Overlay) Dirty() bool { return o.UpperFiles > 0 || o.UpperBytes > 0 }

// OverlayPool keeps purged function-specific overlays for reuse instead
// of discarding them after unmounting (§5.2.1's second enhancement).
type OverlayPool struct {
	idle   map[string][]*Overlay
	hits   int64
	misses int64
}

// Get returns a pooled overlay for fn, or a fresh one.
func (p *OverlayPool) Get(fn string) *Overlay {
	if p.idle == nil {
		p.idle = make(map[string][]*Overlay)
	}
	list := p.idle[fn]
	if len(list) > 0 {
		o := list[len(list)-1]
		p.idle[fn] = list[:len(list)-1]
		p.hits++
		return o
	}
	p.misses++
	return &Overlay{Function: fn}
}

// Put returns an unmounted, purged overlay to the pool. Pooling a dirty
// or mounted overlay is a bug: it would leak the previous instance's
// files to a future one.
func (p *OverlayPool) Put(o *Overlay) {
	if o.Dirty() {
		panic(fmt.Sprintf("sandbox: pooling dirty overlay of %q", o.Function))
	}
	if o.Mounted {
		panic(fmt.Sprintf("sandbox: pooling mounted overlay of %q", o.Function))
	}
	if p.idle == nil {
		p.idle = make(map[string][]*Overlay)
	}
	p.idle[o.Function] = append(p.idle[o.Function], o)
}

// Hits and Misses report pool effectiveness.
func (p *OverlayPool) Hits() int64   { return p.hits }
func (p *OverlayPool) Misses() int64 { return p.misses }

// Len returns pooled overlays for fn.
func (p *OverlayPool) Len(fn string) int { return len(p.idle[fn]) }

// SyscallTally counts the namespace/filesystem syscalls issued, backing
// the §5.2.1 comparison: a cold rootfs build needs >9 mounts, 6 mknods
// and a pivot_root, while a repurposing transition needs 2 mounts.
type SyscallTally struct {
	Mounts     int64
	Unmounts   int64
	Mknods     int64
	PivotRoots int64
}
