package sandbox

import (
	"fmt"
	"time"
)

// Limits is the resource configuration applied to a sandbox's cgroup:
// the cgroup-v2 controller knobs a serverless platform sets per
// function (cpu.max, memory.max, io.max, pids.max).
type Limits struct {
	// CPUQuota is the fraction of one core the instance may use
	// (cpu.max quota/period); 0 means unlimited.
	CPUQuota float64
	// MemoryBytes is memory.max; 0 means unlimited.
	MemoryBytes int64
	// IOBytesPerSec is io.max rbps+wbps; 0 means unlimited.
	IOBytesPerSec int64
	// Pids is pids.max; 0 means unlimited.
	Pids int
}

// Validate rejects nonsensical limits.
func (l Limits) Validate() error {
	if l.CPUQuota < 0 || l.MemoryBytes < 0 || l.IOBytesPerSec < 0 || l.Pids < 0 {
		return fmt.Errorf("sandbox: negative limit: %+v", l)
	}
	return nil
}

// ControllerSet tracks which cgroup-v2 controllers are enabled in the
// subtree (the subtree_control file).
type ControllerSet uint8

// Controllers.
const (
	ControllerCPU ControllerSet = 1 << iota
	ControllerMemory
	ControllerIO
	ControllerPids
)

// Has reports whether c enables ctrl.
func (c ControllerSet) Has(ctrl ControllerSet) bool { return c&ctrl != 0 }

// AllControllers is the standard serverless configuration.
const AllControllers = ControllerCPU | ControllerMemory | ControllerIO | ControllerPids

// CgroupNode is one directory of the cgroup-v2 hierarchy.
type CgroupNode struct {
	Name        string
	Controllers ControllerSet
	Limits      Limits
	parent      *CgroupNode
	children    map[string]*CgroupNode
	// Procs counts member processes (cgroup.procs).
	Procs int
	// Frozen mirrors cgroup.freeze, used while checkpointing.
	Frozen bool
}

// Hierarchy is a cgroup-v2 tree rooted at "/sys/fs/cgroup".
type Hierarchy struct {
	root *CgroupNode
}

// NewHierarchy creates a hierarchy with all controllers enabled at the
// root.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{root: &CgroupNode{
		Name:        "/",
		Controllers: AllControllers,
		children:    make(map[string]*CgroupNode),
	}}
}

// Root returns the hierarchy root.
func (h *Hierarchy) Root() *CgroupNode { return h.root }

// MkDir creates a child cgroup under parent, inheriting the enabled
// controller set (a child can only enable what its parent delegates).
func (h *Hierarchy) MkDir(parent *CgroupNode, name string, limits Limits) (*CgroupNode, error) {
	if err := limits.Validate(); err != nil {
		return nil, err
	}
	if parent == nil {
		parent = h.root
	}
	if _, ok := parent.children[name]; ok {
		return nil, fmt.Errorf("sandbox: cgroup %s/%s exists", parent.Name, name)
	}
	n := &CgroupNode{
		Name:        parent.Name + name + "/",
		Controllers: parent.Controllers,
		Limits:      limits,
		parent:      parent,
		children:    make(map[string]*CgroupNode),
	}
	parent.children[name] = n
	return n, nil
}

// RmDir removes an empty leaf cgroup.
func (h *Hierarchy) RmDir(n *CgroupNode) error {
	if n == h.root {
		return fmt.Errorf("sandbox: cannot remove the cgroup root")
	}
	if n.Procs > 0 {
		return fmt.Errorf("sandbox: cgroup %s busy (%d procs)", n.Name, n.Procs)
	}
	if len(n.children) > 0 {
		return fmt.Errorf("sandbox: cgroup %s has children", n.Name)
	}
	for name, c := range n.parent.children {
		if c == n {
			delete(n.parent.children, name)
			return nil
		}
	}
	return fmt.Errorf("sandbox: cgroup %s not linked", n.Name)
}

// AttachProc moves a process into n (the cgroup.procs write — the
// RCU-synchronized migration path whose latency Table 1 measures).
func (n *CgroupNode) AttachProc() { n.Procs++ }

// DetachProc removes a process.
func (n *CgroupNode) DetachProc() {
	if n.Procs == 0 {
		panic(fmt.Sprintf("sandbox: detach from empty cgroup %s", n.Name))
	}
	n.Procs--
}

// SetLimits reconfigures the controllers in place — the cheap part of
// repurposing: writing cpu.max / memory.max does not need the migration
// path's synchronization.
func (n *CgroupNode) SetLimits(l Limits) error {
	if err := l.Validate(); err != nil {
		return err
	}
	n.Limits = l
	return nil
}

// EffectiveLimit walks up the tree: the tightest ancestor bound wins
// (cgroup-v2 semantics).
func (n *CgroupNode) EffectiveLimit() Limits {
	eff := n.Limits
	for a := n.parent; a != nil; a = a.parent {
		if a.Limits.CPUQuota > 0 && (eff.CPUQuota == 0 || a.Limits.CPUQuota < eff.CPUQuota) {
			eff.CPUQuota = a.Limits.CPUQuota
		}
		if a.Limits.MemoryBytes > 0 && (eff.MemoryBytes == 0 || a.Limits.MemoryBytes < eff.MemoryBytes) {
			eff.MemoryBytes = a.Limits.MemoryBytes
		}
		if a.Limits.IOBytesPerSec > 0 && (eff.IOBytesPerSec == 0 || a.Limits.IOBytesPerSec < eff.IOBytesPerSec) {
			eff.IOBytesPerSec = a.Limits.IOBytesPerSec
		}
		if a.Limits.Pids > 0 && (eff.Pids == 0 || a.Limits.Pids < eff.Pids) {
			eff.Pids = a.Limits.Pids
		}
	}
	return eff
}

// Freeze/Thaw toggle cgroup.freeze (used around checkpoints).
func (n *CgroupNode) Freeze() { n.Frozen = true }

// Thaw unfreezes.
func (n *CgroupNode) Thaw() { n.Frozen = false }

// Walk visits n and its descendants depth-first.
func (n *CgroupNode) Walk(fn func(*CgroupNode)) {
	fn(n)
	for _, c := range n.children {
		c.Walk(fn)
	}
}

// FunctionLimits derives the per-function cgroup configuration a
// serverless platform applies: one core, the image size plus headroom of
// memory, and conventional IO/pid bounds.
func FunctionLimits(imageBytes int64) Limits {
	return Limits{
		CPUQuota:      1.0,
		MemoryBytes:   imageBytes + (256 << 20),
		IOBytesPerSec: 200 << 20,
		Pids:          1024,
	}
}

// ThrottledDuration returns how long cpuTime of work takes under a CPU
// quota (cpu.max throttling stretches on-CPU bursts).
func (l Limits) ThrottledDuration(cpuTime time.Duration) time.Duration {
	if l.CPUQuota <= 0 || l.CPUQuota >= 1 {
		return cpuTime
	}
	return time.Duration(float64(cpuTime) / l.CPUQuota)
}
