package sandbox

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestHierarchyMkDirRmDir(t *testing.T) {
	h := NewHierarchy()
	n, err := h.MkDir(nil, "sb-1", FunctionLimits(100<<20))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "/sb-1/" {
		t.Fatalf("name = %q", n.Name)
	}
	if !n.Controllers.Has(ControllerCPU) || !n.Controllers.Has(ControllerMemory) {
		t.Fatal("controllers not inherited")
	}
	if _, err := h.MkDir(nil, "sb-1", Limits{}); err == nil {
		t.Fatal("duplicate mkdir succeeded")
	}
	child, err := h.MkDir(n, "nested", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RmDir(n); err == nil {
		t.Fatal("removed cgroup with children")
	}
	if err := h.RmDir(child); err != nil {
		t.Fatal(err)
	}
	if err := h.RmDir(n); err != nil {
		t.Fatal(err)
	}
	if err := h.RmDir(h.Root()); err == nil {
		t.Fatal("removed root")
	}
}

func TestRmDirBusyCgroup(t *testing.T) {
	h := NewHierarchy()
	n, _ := h.MkDir(nil, "sb-1", Limits{})
	n.AttachProc()
	if err := h.RmDir(n); err == nil {
		t.Fatal("removed busy cgroup")
	}
	n.DetachProc()
	if err := h.RmDir(n); err != nil {
		t.Fatal(err)
	}
}

func TestDetachEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	h := NewHierarchy()
	n, _ := h.MkDir(nil, "sb-1", Limits{})
	n.DetachProc()
}

func TestEffectiveLimitTakesTightestAncestor(t *testing.T) {
	h := NewHierarchy()
	parent, _ := h.MkDir(nil, "tenant", Limits{CPUQuota: 0.5, MemoryBytes: 1 << 30})
	child, _ := h.MkDir(parent, "fn", Limits{CPUQuota: 2, MemoryBytes: 4 << 30, Pids: 100})
	eff := child.EffectiveLimit()
	if eff.CPUQuota != 0.5 {
		t.Fatalf("cpu = %v, parent should cap", eff.CPUQuota)
	}
	if eff.MemoryBytes != 1<<30 {
		t.Fatalf("mem = %d", eff.MemoryBytes)
	}
	if eff.Pids != 100 {
		t.Fatalf("pids = %d (no ancestor bound)", eff.Pids)
	}
}

func TestLimitsValidation(t *testing.T) {
	if err := (Limits{CPUQuota: -1}).Validate(); err == nil {
		t.Fatal("negative quota accepted")
	}
	h := NewHierarchy()
	if _, err := h.MkDir(nil, "x", Limits{MemoryBytes: -5}); err == nil {
		t.Fatal("mkdir with bad limits succeeded")
	}
	n, _ := h.MkDir(nil, "y", Limits{})
	if err := n.SetLimits(Limits{Pids: -1}); err == nil {
		t.Fatal("SetLimits accepted bad limits")
	}
}

func TestThrottledDuration(t *testing.T) {
	l := Limits{CPUQuota: 0.5}
	if got := l.ThrottledDuration(time.Second); got != 2*time.Second {
		t.Fatalf("throttled = %v", got)
	}
	if got := (Limits{}).ThrottledDuration(time.Second); got != time.Second {
		t.Fatalf("unlimited throttled = %v", got)
	}
	if got := (Limits{CPUQuota: 2}).ThrottledDuration(time.Second); got != time.Second {
		t.Fatalf("over-provisioned throttled = %v", got)
	}
}

func TestFreezeThaw(t *testing.T) {
	h := NewHierarchy()
	n, _ := h.MkDir(nil, "sb", Limits{})
	n.Freeze()
	if !n.Frozen {
		t.Fatal("not frozen")
	}
	n.Thaw()
	if n.Frozen {
		t.Fatal("not thawed")
	}
}

func TestFactoryLifecycleKeepsHierarchyConsistent(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	runProc(t, func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		if sb.Cgroup.Node == nil || sb.Cgroup.Node.Procs != 1 {
			t.Error("create did not attach the process")
			return
		}
		f.Clean(p, sb)
		if sb.Cgroup.Node.Procs != 0 {
			t.Error("clean did not detach")
			return
		}
		p.Sleep(5 * time.Millisecond)
		f.Repurpose(p, sb, "fnB")
		if sb.Cgroup.Node.Procs != 1 {
			t.Error("repurpose did not CLONE_INTO_CGROUP")
			return
		}
		f.Clean(p, sb)
		if err := f.Destroy(sb); err != nil {
			t.Error(err)
		}
		// The hierarchy is empty again.
		count := 0
		f.Cgroups.Root().Walk(func(*CgroupNode) { count++ })
		if count != 1 {
			t.Errorf("hierarchy nodes = %d, want root only", count)
		}
	})
}

// Property: EffectiveLimit is monotone — a child's effective limit never
// exceeds any ancestor's configured bound.
func TestEffectiveLimitMonotoneProperty(t *testing.T) {
	fn := func(quotas []uint8) bool {
		h := NewHierarchy()
		parent := h.Root()
		var mins Limits
		for i, q := range quotas {
			if i >= 6 {
				break
			}
			l := Limits{CPUQuota: float64(q%8) / 2, MemoryBytes: int64(q) << 20}
			n, err := h.MkDir(parent, "n", l)
			if err != nil {
				return false
			}
			if l.CPUQuota > 0 && (mins.CPUQuota == 0 || l.CPUQuota < mins.CPUQuota) {
				mins.CPUQuota = l.CPUQuota
			}
			if l.MemoryBytes > 0 && (mins.MemoryBytes == 0 || l.MemoryBytes < mins.MemoryBytes) {
				mins.MemoryBytes = l.MemoryBytes
			}
			eff := n.EffectiveLimit()
			if mins.CPUQuota > 0 && eff.CPUQuota != mins.CPUQuota {
				return false
			}
			if mins.MemoryBytes > 0 && eff.MemoryBytes != mins.MemoryBytes {
				return false
			}
			parent = n
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
