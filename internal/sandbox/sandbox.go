// Package sandbox models the isolation components of a container sandbox
// — network namespace, root filesystem, cgroup, and the miscellaneous
// namespaces — with the creation/reuse cost structure of the paper's
// Table 1, plus TrEnv's repurposable sandbox pool (§4, §5.2).
//
// The key asymmetry the paper exploits: creating these components is
// expensive (and gets worse under concurrent cold starts: the kernel
// serializes on global locks, e.g. ~400 ms of netns setup at 15
// concurrent creations), while cleansing and reconfiguring an existing
// sandbox costs around a millisecond:
//
//   - netns: reused verbatim after terminating connections — it leaks no
//     data produced during processing (§8.1.1).
//   - rootfs: overlayfs upper dir purged (asynchronously), the function-
//     specific overlay swapped with 2 mount syscalls (§5.2.1).
//   - cgroup: reconfigured and entered via CLONE_INTO_CGROUP at spawn
//     time, bypassing the RCU-heavy migration path (§5.2.2).
package sandbox

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// CostModel prices sandbox operations. Ranges follow Table 1; the Per-
// Concurrent terms model the kernel-lock serialization observed under
// concurrent cold starts.
type CostModel struct {
	// NetNSBase..NetNSMax: creating a network namespace plus veth pair.
	NetNSBase          time.Duration
	NetNSPerConcurrent time.Duration
	NetNSMax           time.Duration

	// Rootfs creation: >9 mounts, 6 mknod, pivot_root, ...
	RootfsBase          time.Duration
	RootfsPerConcurrent time.Duration
	RootfsMax           time.Duration

	// Cgroup creation and migration (the RCU-synchronized path).
	CgroupCreateMin  time.Duration
	CgroupCreateMax  time.Duration
	CgroupMigrateMin time.Duration
	CgroupMigrateMax time.Duration

	// CloneIntoCgroup is the CLONE_INTO_CGROUP fast path used when
	// spawning into a repurposed sandbox.
	CloneIntoCgroupMin time.Duration
	CloneIntoCgroupMax time.Duration

	// OtherNS covers pid/time/uts/ipc namespaces (< 1 ms).
	OtherNS time.Duration

	// OverlayMount is one mount syscall for a function-specific overlay;
	// repurposing needs two (unmount old + mount new).
	OverlayMount time.Duration

	// KillProcesses is terminating the previous instance's process tree.
	KillProcesses time.Duration

	// TeardownConns is forcibly closing the previous instance's network
	// connections during repurposing.
	TeardownConns time.Duration
}

// DefaultCostModel returns Table 1's cost structure.
func DefaultCostModel() CostModel {
	return CostModel{
		NetNSBase:           80 * time.Millisecond,
		NetNSPerConcurrent:  22 * time.Millisecond, // 15 concurrent => ~400 ms
		NetNSMax:            10 * time.Second,
		RootfsBase:          10 * time.Millisecond,
		RootfsPerConcurrent: 8 * time.Millisecond,
		RootfsMax:           800 * time.Millisecond,
		CgroupCreateMin:     16 * time.Millisecond,
		CgroupCreateMax:     32 * time.Millisecond,
		CgroupMigrateMin:    10 * time.Millisecond,
		CgroupMigrateMax:    50 * time.Millisecond,
		CloneIntoCgroupMin:  100 * time.Microsecond,
		CloneIntoCgroupMax:  300 * time.Microsecond,
		OtherNS:             800 * time.Microsecond,
		OverlayMount:        250 * time.Microsecond,
		KillProcesses:       300 * time.Microsecond,
		TeardownConns:       200 * time.Microsecond,
	}
}

func uniform(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

func scaled(base, per, max time.Duration, concurrent int) time.Duration {
	d := base + time.Duration(concurrent)*per
	if d > max {
		d = max
	}
	return d
}

// NetNS is an isolated network environment (namespace + veth).
type NetNS struct {
	ID          int
	Connections int // open connections of the current occupant
}

// Rootfs is a mount namespace with a base union filesystem and one
// function-specific overlay overmounted on top (§5.2.1).
type Rootfs struct {
	Overlay    string // function whose overlay is currently mounted
	DirtyUpper bool   // upper dir holds the previous instance's writes
	Mounts     []Mount
	Func       *Overlay // the function-specific union filesystem
}

// MountCount returns the mount-table size.
func (r *Rootfs) MountCount() int { return len(r.Mounts) }

// Cgroup is a resource-isolation group.
type Cgroup struct {
	ID       int
	Function string // whose limits are applied
	Node     *CgroupNode
}

// Sandbox bundles the isolation components of one container or VM jailer.
type Sandbox struct {
	ID         int
	Net        *NetNS
	Rootfs     *Rootfs
	Cgroup     *Cgroup
	Function   string // current occupant ("" when clean in the pool)
	Generation int    // times this sandbox has been repurposed
}

// Breakdown itemizes where sandbox-path latency went (Figure 4, Table 1).
type Breakdown struct {
	NetNS         time.Duration
	Rootfs        time.Duration
	CgroupCreate  time.Duration
	CgroupMigrate time.Duration
	Other         time.Duration
}

// Total sums the components.
func (b Breakdown) Total() time.Duration {
	return b.NetNS + b.Rootfs + b.CgroupCreate + b.CgroupMigrate + b.Other
}

// Factory creates and repurposes sandboxes, tracking in-flight creations
// for the concurrency-dependent cost terms.
type Factory struct {
	cm       CostModel
	nextID   int
	creating int // concurrent creations in flight
	created  sim.Counter
	reused   sim.Counter

	// Overlays pools purged function-specific overlays for reuse.
	Overlays OverlayPool
	// Syscalls tallies mount-path syscalls (the §5.2.1 comparison).
	Syscalls SyscallTally
	// Cgroups is the node's cgroup-v2 hierarchy.
	Cgroups *Hierarchy
}

// NewFactory returns a factory with the given cost model.
func NewFactory(cm CostModel) *Factory {
	return &Factory{cm: cm, Cgroups: NewHierarchy()}
}

// Created returns how many sandboxes were created from scratch.
func (f *Factory) Created() int64 { return f.created.Value() }

// Repurposed returns how many sandbox handoffs were served by reuse.
func (f *Factory) Repurposed() int64 { return f.reused.Value() }

// Create builds a sandbox from scratch for function fn, sleeping through
// the full Table 1 cost. The concurrency surcharge reflects other
// creations in flight at the same time.
func (f *Factory) Create(p *sim.Proc, fn string) (*Sandbox, Breakdown) {
	f.creating++
	defer func() { f.creating-- }()
	rng := p.Rand()
	b := Breakdown{
		NetNS:         scaled(f.cm.NetNSBase, f.cm.NetNSPerConcurrent, f.cm.NetNSMax, f.creating-1),
		Rootfs:        scaled(f.cm.RootfsBase, f.cm.RootfsPerConcurrent, f.cm.RootfsMax, f.creating-1),
		CgroupCreate:  uniform(rng, f.cm.CgroupCreateMin, f.cm.CgroupCreateMax),
		CgroupMigrate: uniform(rng, f.cm.CgroupMigrateMin, f.cm.CgroupMigrateMax),
		Other:         f.cm.OtherNS,
	}
	p.Sleep(b.Total())
	f.nextID++
	f.created.Inc()
	// A cold rootfs build: every base mount, the device nodes, a
	// pivot_root, and the function overlay on top.
	ov := f.Overlays.Get(fn)
	ov.Mounted = true
	rootfs := &Rootfs{
		Overlay: fn,
		Mounts:  append(baseMounts(), Mount{Kind: MountFuncUnion, Path: "/srv/function", ReadOnly: false}),
		Func:    ov,
	}
	f.Syscalls.Mounts += int64(len(rootfs.Mounts))
	f.Syscalls.Mknods += 6
	f.Syscalls.PivotRoots++
	node, err := f.Cgroups.MkDir(nil, fmt.Sprintf("sb-%d", f.nextID), FunctionLimits(0))
	if err != nil {
		panic(err) // IDs are unique; MkDir cannot collide
	}
	node.AttachProc() // the cgroup-migration step the Breakdown charges
	return &Sandbox{
		ID:       f.nextID,
		Net:      &NetNS{ID: f.nextID},
		Rootfs:   rootfs,
		Cgroup:   &Cgroup{ID: f.nextID, Function: fn, Node: node},
		Function: fn,
	}, b
}

// CreateWarm builds a cleaned, pool-ready sandbox without charging
// simulated time — pre-provisioning that happened before the measured
// window. The sandbox carries the full component set (netns, base
// mounts, cgroup) but no function overlay or occupant.
func (f *Factory) CreateWarm() *Sandbox {
	f.nextID++
	f.created.Inc()
	node, err := f.Cgroups.MkDir(nil, fmt.Sprintf("sb-%d", f.nextID), FunctionLimits(0))
	if err != nil {
		panic(err)
	}
	return &Sandbox{
		ID:     f.nextID,
		Net:    &NetNS{ID: f.nextID},
		Rootfs: &Rootfs{Mounts: baseMounts()},
		Cgroup: &Cgroup{ID: f.nextID, Node: node},
	}
}

// CreateNetNS builds a bare network namespace (for microVM baselines
// whose other isolation lives in the hypervisor). It pays the same
// concurrency-sensitive netns cost as a full sandbox creation.
func (f *Factory) CreateNetNS(p *sim.Proc) (*NetNS, time.Duration) {
	f.creating++
	defer func() { f.creating-- }()
	d := scaled(f.cm.NetNSBase, f.cm.NetNSPerConcurrent, f.cm.NetNSMax, f.creating-1)
	p.Sleep(d)
	f.nextID++
	return &NetNS{ID: f.nextID}, d
}

// Clean terminates the previous occupant and cleanses the sandbox for
// pooling (step B1 of Figure 6): processes killed, connections torn down,
// upper-dir purge started asynchronously. It returns the (small) critical-
// path cost, which the caller has already slept through.
func (f *Factory) Clean(p *sim.Proc, sb *Sandbox) time.Duration {
	d := f.cm.KillProcesses + f.cm.TeardownConns
	p.Sleep(d)
	sb.Net.Connections = 0
	sb.Function = ""
	if sb.Cgroup.Node != nil && sb.Cgroup.Node.Procs > 0 {
		sb.Cgroup.Node.DetachProc() // occupant's process tree is gone
	}
	sb.Rootfs.DirtyUpper = true
	if sb.Rootfs.Func != nil && !sb.Rootfs.Func.Dirty() {
		// The occupant modified files; they live in the upper dir until
		// the purge completes.
		sb.Rootfs.Func.RecordWrite(4, 128<<10)
	}
	// Purge is asynchronous (§5.2.1); schedule completion off the
	// critical path.
	rootfs := sb.Rootfs
	p.Engine().After(2*time.Millisecond, func() {
		if rootfs.Func != nil {
			rootfs.Func.Purge()
		}
		rootfs.DirtyUpper = false
	})
	return d
}

// Repurpose converts a cleaned sandbox to function fn (step B2): swap the
// function-specific overlay (2 mounts) and apply cgroup limits via
// CLONE_INTO_CGROUP at spawn. It returns the critical-path cost.
func (f *Factory) Repurpose(p *sim.Proc, sb *Sandbox, fn string) (time.Duration, error) {
	if sb.Function != "" {
		return 0, fmt.Errorf("sandbox: repurposing %d while occupied by %q", sb.ID, sb.Function)
	}
	rng := p.Rand()
	d := 2*f.cm.OverlayMount + uniform(rng, f.cm.CloneIntoCgroupMin, f.cm.CloneIntoCgroupMax)
	if sb.Rootfs.DirtyUpper {
		// Async purge has not finished; it completes synchronously now.
		d += 2 * time.Millisecond
		if sb.Rootfs.Func != nil {
			sb.Rootfs.Func.Purge()
		}
		sb.Rootfs.DirtyUpper = false
	}
	p.Sleep(d)
	// Swap the function-specific overlay: unmount the predecessor's
	// (recycling it) and overmount fn's — the 2-syscall transition.
	if old := sb.Rootfs.Func; old != nil {
		old.Mounted = false
		f.Overlays.Put(old)
	}
	ov := f.Overlays.Get(fn)
	ov.Mounted = true
	sb.Rootfs.Func = ov
	if n := len(sb.Rootfs.Mounts); n > 0 && sb.Rootfs.Mounts[n-1].Kind == MountFuncUnion {
		sb.Rootfs.Mounts[n-1] = Mount{Kind: MountFuncUnion, Path: "/srv/function"}
	} else {
		// Pre-warmed sandboxes carry only the base mounts until their
		// first occupant.
		sb.Rootfs.Mounts = append(sb.Rootfs.Mounts, Mount{Kind: MountFuncUnion, Path: "/srv/function"})
	}
	f.Syscalls.Unmounts++
	f.Syscalls.Mounts += 2
	sb.Rootfs.Overlay = fn
	sb.Cgroup.Function = fn
	if sb.Cgroup.Node != nil {
		// Reconfigure the controllers in place and enter at spawn time
		// (CLONE_INTO_CGROUP) — no migration synchronization.
		if err := sb.Cgroup.Node.SetLimits(FunctionLimits(0)); err != nil {
			return 0, err
		}
		sb.Cgroup.Node.AttachProc()
	}
	sb.Function = fn
	sb.Generation++
	f.reused.Inc()
	return d, nil
}

// MigrateCgroup performs the legacy cgroup migration (create + move task),
// used by baselines that lack CLONE_INTO_CGROUP. Returns the slept cost.
func (f *Factory) MigrateCgroup(p *sim.Proc) time.Duration {
	d := uniform(p.Rand(), f.cm.CgroupMigrateMin, f.cm.CgroupMigrateMax)
	p.Sleep(d)
	return d
}

// Pool is a LIFO pool of cleaned sandboxes (the universal, function-type-
// agnostic pool at the heart of TrEnv's repurposing).
type Pool struct {
	idle []*Sandbox
}

// Get pops the most recently returned sandbox, or nil if empty.
func (p *Pool) Get() *Sandbox {
	if len(p.idle) == 0 {
		return nil
	}
	sb := p.idle[len(p.idle)-1]
	p.idle = p.idle[:len(p.idle)-1]
	return sb
}

// Put returns a cleaned sandbox to the pool. Putting an occupied sandbox
// is a bug.
func (p *Pool) Put(sb *Sandbox) {
	if sb.Function != "" {
		panic(fmt.Sprintf("sandbox: pooling occupied sandbox %d (%s)", sb.ID, sb.Function))
	}
	p.idle = append(p.idle, sb)
}

// Len returns the number of pooled sandboxes.
func (p *Pool) Len() int { return len(p.idle) }

// NetNSPool recycles bare network namespaces; this is the enhancement the
// paper grants the REAP+ and FaaSnap+ baselines so the comparison focuses
// on memory restoration rather than network setup.
type NetNSPool struct {
	idle []*NetNS
}

// Get pops a namespace, or nil.
func (p *NetNSPool) Get() *NetNS {
	if len(p.idle) == 0 {
		return nil
	}
	ns := p.idle[len(p.idle)-1]
	p.idle = p.idle[:len(p.idle)-1]
	return ns
}

// Put recycles a namespace after teardown.
func (p *NetNSPool) Put(ns *NetNS) {
	ns.Connections = 0
	p.idle = append(p.idle, ns)
}

// Len returns the pooled count.
func (p *NetNSPool) Len() int { return len(p.idle) }

// Destroy tears a sandbox down entirely (non-recycled paths): the
// occupant's process leaves the cgroup and the cgroup directory is
// removed.
func (f *Factory) Destroy(sb *Sandbox) error {
	if sb.Cgroup.Node != nil {
		if sb.Cgroup.Node.Procs > 0 {
			sb.Cgroup.Node.DetachProc()
		}
		if err := f.Cgroups.RmDir(sb.Cgroup.Node); err != nil {
			return err
		}
		sb.Cgroup.Node = nil
	}
	return nil
}
