package sandbox

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// runProc runs fn as a single simulated process and returns the virtual
// time it consumed.
func runProc(t *testing.T, fn func(p *sim.Proc)) time.Duration {
	t.Helper()
	e := sim.NewEngine(1)
	var took time.Duration
	e.Go("test", func(p *sim.Proc) {
		start := p.Now()
		fn(p)
		took = p.Now() - start
	})
	e.Run()
	return took
}

func TestCreateCostsInTable1Range(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	took := runProc(t, func(p *sim.Proc) {
		sb, b := f.Create(p, "fnA")
		if sb.Function != "fnA" || sb.Rootfs.Overlay != "fnA" || sb.Cgroup.Function != "fnA" {
			t.Errorf("sandbox not configured for fnA: %+v", sb)
		}
		if b.NetNS < 80*time.Millisecond {
			t.Errorf("netns cost %v below Table 1 floor", b.NetNS)
		}
		if b.CgroupCreate < 16*time.Millisecond || b.CgroupCreate > 32*time.Millisecond {
			t.Errorf("cgroup create %v outside [16,32]ms", b.CgroupCreate)
		}
		if b.CgroupMigrate < 10*time.Millisecond || b.CgroupMigrate > 50*time.Millisecond {
			t.Errorf("cgroup migrate %v outside [10,50]ms", b.CgroupMigrate)
		}
		if b.Other >= time.Millisecond {
			t.Errorf("other namespaces %v, Table 1 says < 1ms", b.Other)
		}
	})
	// Single uncontended cold start: ~120-170 ms.
	if took < 100*time.Millisecond || took > 500*time.Millisecond {
		t.Fatalf("cold sandbox creation took %v", took)
	}
}

func TestConcurrentCreationInflatesNetNS(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	e := sim.NewEngine(1)
	var maxNet time.Duration
	for i := 0; i < 15; i++ {
		e.Go("creator", func(p *sim.Proc) {
			_, b := f.Create(p, "fn")
			if b.NetNS > maxNet {
				maxNet = b.NetNS
			}
		})
	}
	e.Run()
	// Paper: 15 concurrent cold starts push network setup to ~400 ms.
	if maxNet < 350*time.Millisecond {
		t.Fatalf("netns under 15-way concurrency = %v, want ~400ms", maxNet)
	}
	if f.Created() != 15 {
		t.Fatalf("created = %d", f.Created())
	}
}

func TestNetNSCapped(t *testing.T) {
	cm := DefaultCostModel()
	f := NewFactory(cm)
	e := sim.NewEngine(1)
	var maxNet time.Duration
	for i := 0; i < 1000; i++ {
		e.Go("creator", func(p *sim.Proc) {
			_, b := f.Create(p, "fn")
			if b.NetNS > maxNet {
				maxNet = b.NetNS
			}
		})
	}
	e.Run()
	if maxNet > cm.NetNSMax {
		t.Fatalf("netns cost %v exceeds cap %v", maxNet, cm.NetNSMax)
	}
}

func TestCleanEnforcesIsolationInvariants(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	runProc(t, func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		sb.Net.Connections = 7 // fnA opened connections
		f.Clean(p, sb)
		if sb.Net.Connections != 0 {
			t.Error("connections survived cleaning (data leak)")
		}
		if sb.Function != "" {
			t.Error("sandbox still occupied after clean")
		}
		if !sb.Rootfs.DirtyUpper {
			t.Error("upper dir purge should be pending (async)")
		}
		p.Sleep(5 * time.Millisecond) // async purge completes
		if sb.Rootfs.DirtyUpper {
			t.Error("async purge never completed")
		}
	})
}

func TestRepurposeIsFastAndReconfigures(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	var repurposeCost time.Duration
	runProc(t, func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		f.Clean(p, sb)
		p.Sleep(5 * time.Millisecond) // async purge done
		d, err := f.Repurpose(p, sb, "fnB")
		if err != nil {
			t.Error(err)
			return
		}
		repurposeCost = d
		if sb.Function != "fnB" || sb.Rootfs.Overlay != "fnB" || sb.Cgroup.Function != "fnB" {
			t.Errorf("sandbox not reconfigured: %+v", sb)
		}
		if sb.Generation != 1 {
			t.Errorf("generation = %d", sb.Generation)
		}
	})
	// Paper: rootfs reconfig < 1 ms, CLONE_INTO_CGROUP 100-300 µs.
	if repurposeCost > 2*time.Millisecond {
		t.Fatalf("repurpose cost %v, want ~1ms class", repurposeCost)
	}
	if f.Repurposed() != 1 {
		t.Fatalf("repurposed = %d", f.Repurposed())
	}
}

func TestRepurposeBeforePurgePaysSyncCost(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	runProc(t, func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		f.Clean(p, sb)
		// Immediately repurpose: purge must complete synchronously.
		d, err := f.Repurpose(p, sb, "fnB")
		if err != nil {
			t.Error(err)
			return
		}
		if d < 2*time.Millisecond {
			t.Errorf("synchronous purge not charged: %v", d)
		}
		if sb.Rootfs.DirtyUpper {
			t.Error("upper dir still dirty after repurpose")
		}
	})
}

func TestRepurposeOccupiedFails(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	runProc(t, func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		if _, err := f.Repurpose(p, sb, "fnB"); err == nil {
			t.Error("repurposing an occupied sandbox succeeded")
		}
	})
}

func TestRepurposeMuchCheaperThanCreate(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	var createCost, repurposeCost time.Duration
	runProc(t, func(p *sim.Proc) {
		t0 := p.Now()
		sb, _ := f.Create(p, "fnA")
		createCost = p.Now() - t0
		f.Clean(p, sb)
		p.Sleep(5 * time.Millisecond)
		t1 := p.Now()
		f.Repurpose(p, sb, "fnB")
		repurposeCost = p.Now() - t1
	})
	if repurposeCost*50 > createCost {
		t.Fatalf("repurpose (%v) should be >50x cheaper than create (%v)", repurposeCost, createCost)
	}
}

func TestPoolLIFO(t *testing.T) {
	var pool Pool
	a := &Sandbox{ID: 1}
	b := &Sandbox{ID: 2}
	pool.Put(a)
	pool.Put(b)
	if pool.Len() != 2 {
		t.Fatalf("len = %d", pool.Len())
	}
	if got := pool.Get(); got != b {
		t.Fatal("pool not LIFO")
	}
	if got := pool.Get(); got != a {
		t.Fatal("second get wrong")
	}
	if pool.Get() != nil {
		t.Fatal("empty pool returned sandbox")
	}
}

func TestPoolRejectsOccupied(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pooling occupied sandbox did not panic")
		}
	}()
	var pool Pool
	pool.Put(&Sandbox{ID: 1, Function: "fnA"})
}

func TestNetNSPoolRecycling(t *testing.T) {
	var pool NetNSPool
	ns := &NetNS{ID: 1, Connections: 5}
	pool.Put(ns)
	if ns.Connections != 0 {
		t.Fatal("connections survived recycling")
	}
	if got := pool.Get(); got != ns {
		t.Fatal("namespace not recycled")
	}
	if pool.Get() != nil || pool.Len() != 0 {
		t.Fatal("empty pool behavior")
	}
}

func TestMigrateCgroupInRange(t *testing.T) {
	cm := DefaultCostModel()
	f := NewFactory(cm)
	took := runProc(t, func(p *sim.Proc) { f.MigrateCgroup(p) })
	if took < cm.CgroupMigrateMin || took > cm.CgroupMigrateMax {
		t.Fatalf("migrate cost %v outside range", took)
	}
}
