package sandbox

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestColdRootfsBuildSyscallCounts(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	runProc(t, func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		// §5.2.1: a cold build needs >9 mounts, 6 mknods, 1 pivot_root.
		if f.Syscalls.Mounts <= 9 {
			t.Errorf("cold build mounts = %d, want > 9", f.Syscalls.Mounts)
		}
		if f.Syscalls.Mknods != 6 || f.Syscalls.PivotRoots != 1 {
			t.Errorf("mknods=%d pivots=%d", f.Syscalls.Mknods, f.Syscalls.PivotRoots)
		}
		if sb.Rootfs.MountCount() != 10 {
			t.Errorf("mount table size = %d", sb.Rootfs.MountCount())
		}
		if sb.Rootfs.Func == nil || !sb.Rootfs.Func.Mounted || sb.Rootfs.Func.Function != "fnA" {
			t.Error("function overlay not mounted")
		}
	})
}

func TestRepurposeNeedsTwoMounts(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	runProc(t, func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		f.Clean(p, sb)
		p.Sleep(5 * time.Millisecond)
		before := f.Syscalls.Mounts
		if _, err := f.Repurpose(p, sb, "fnB"); err != nil {
			t.Error(err)
			return
		}
		// §5.2.1: repurposing needs 2 mounts (plus one unmount).
		if got := f.Syscalls.Mounts - before; got != 2 {
			t.Errorf("repurpose mounts = %d, want 2", got)
		}
		if f.Syscalls.Unmounts != 1 {
			t.Errorf("unmounts = %d", f.Syscalls.Unmounts)
		}
		if sb.Rootfs.Func.Function != "fnB" || !sb.Rootfs.Func.Mounted {
			t.Error("fnB overlay not mounted")
		}
	})
}

func TestOverlayRecycledThroughPool(t *testing.T) {
	f := NewFactory(DefaultCostModel())
	runProc(t, func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		aOverlay := sb.Rootfs.Func
		f.Clean(p, sb)
		p.Sleep(5 * time.Millisecond) // async purge done
		f.Repurpose(p, sb, "fnB")
		// fnA's overlay went back to the pool, purged and unmounted.
		if aOverlay.Mounted || aOverlay.Dirty() {
			t.Fatalf("recycled overlay state: mounted=%v dirty=%v", aOverlay.Mounted, aOverlay.Dirty())
		}
		if f.Overlays.Len("fnA") != 1 {
			t.Fatalf("fnA overlays pooled = %d", f.Overlays.Len("fnA"))
		}
		// A later fnA start reuses it.
		f.Clean(p, sb)
		p.Sleep(5 * time.Millisecond)
		f.Repurpose(p, sb, "fnA")
		if sb.Rootfs.Func != aOverlay {
			t.Fatal("overlay not reused from pool")
		}
		if f.Overlays.Hits() == 0 {
			t.Fatal("pool hits not counted")
		}
	})
}

func TestUpperDirPurgedBeforeNextFunction(t *testing.T) {
	// The §8.1.1 invariant: no files from the previous instance survive
	// into the next one's view.
	f := NewFactory(DefaultCostModel())
	runProc(t, func(p *sim.Proc) {
		sb, _ := f.Create(p, "fnA")
		sb.Rootfs.Func.RecordWrite(12, 4<<20) // fnA wrote files
		f.Clean(p, sb)
		// Repurpose immediately (purge still pending => synchronous).
		f.Repurpose(p, sb, "fnB")
		if sb.Rootfs.Func.Dirty() {
			t.Fatal("fnB sees a dirty upper dir")
		}
		if sb.Rootfs.DirtyUpper {
			t.Fatal("rootfs still flagged dirty")
		}
	})
}

func TestOverlayPoolRejectsDirtyOrMounted(t *testing.T) {
	var pool OverlayPool
	dirty := &Overlay{Function: "a"}
	dirty.RecordWrite(1, 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pooling dirty overlay did not panic")
			}
		}()
		pool.Put(dirty)
	}()
	mounted := &Overlay{Function: "a", Mounted: true}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pooling mounted overlay did not panic")
			}
		}()
		pool.Put(mounted)
	}()
}

func TestOverlayRecordWriteValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative write did not panic")
		}
	}()
	o := &Overlay{}
	o.RecordWrite(-1, 0)
}

func TestMountKindStrings(t *testing.T) {
	kinds := []MountKind{MountProc, MountSys, MountDev, MountDevPts, MountShm,
		MountMqueue, MountCgroup, MountTmp, MountBaseUnion, MountFuncUnion}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate mount kind string %q", s)
		}
		seen[s] = true
	}
}

func TestBaseMountsShape(t *testing.T) {
	ms := baseMounts()
	if len(ms) != 9 {
		t.Fatalf("base mounts = %d, want 9", len(ms))
	}
	if ms[0].Kind != MountBaseUnion || ms[0].Path != "/" {
		t.Fatal("first mount must be the base union root")
	}
	ro := 0
	for _, m := range ms {
		if m.ReadOnly {
			ro++
		}
	}
	if ro == 0 {
		t.Fatal("expected some read-only mounts (sysfs, cgroup2)")
	}
}
