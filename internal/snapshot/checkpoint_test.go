package snapshot

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/pagetable"
)

func liveSpaces(t *testing.T) []*pagetable.AddressSpace {
	t.Helper()
	tr := mem.NewTracker("node", 0)
	as := pagetable.NewAddressSpace(tr, mem.DefaultLatencyModel())
	if _, err := as.AddVMA("text", 0x400000, 16, pagetable.Read|pagetable.Exec, pagetable.File, nil, 0, pagetable.Local); err != nil {
		t.Fatal(err)
	}
	if _, err := as.AddVMA("heap", 0x800000, 64, pagetable.Read|pagetable.Write, pagetable.Anon, nil, 0, pagetable.Local); err != nil {
		t.Fatal(err)
	}
	return []*pagetable.AddressSpace{as}
}

func TestCheckpointCapturesLayout(t *testing.T) {
	snap, d, err := Checkpoint("fn", liveSpaces(t), 14, 20, DefaultCheckpointCosts())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("checkpoint was free")
	}
	if snap.Function != "fn" || len(snap.Procs) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	proc := snap.Procs[0]
	if proc.Threads != 14 || proc.FDs != 20 {
		t.Fatalf("threads/fds = %d/%d", proc.Threads, proc.FDs)
	}
	if len(proc.Regions) != 2 {
		t.Fatalf("regions = %d", len(proc.Regions))
	}
	if proc.Regions[0].Name != "text" || proc.Regions[0].Prot&pagetable.Exec == 0 {
		t.Fatal("text region not captured")
	}
	if snap.MemBytes() != 80*mem.PageSize {
		t.Fatalf("mem bytes = %d", snap.MemBytes())
	}
}

func TestCheckpointValidation(t *testing.T) {
	if _, _, err := Checkpoint("fn", nil, 1, 1, DefaultCheckpointCosts()); err == nil {
		t.Fatal("no processes accepted")
	}
	if _, _, err := Checkpoint("fn", liveSpaces(t), 0, 1, DefaultCheckpointCosts()); err == nil {
		t.Fatal("0 threads for 1 process accepted")
	}
}

func TestCheckpointToTemplatePipeline(t *testing.T) {
	// The full offline pipeline: run -> checkpoint -> preprocess ->
	// template attach.
	snap, _, err := Checkpoint("fn", liveSpaces(t), 4, 8, DefaultCheckpointCosts())
	if err != nil {
		t.Fatal(err)
	}
	pool := mem.NewPool(mem.CXL, 0, mem.DefaultLatencyModel())
	st := NewStore(mem.NewBlockStore(pool), mmtemplate.NewRegistry())
	img, err := st.Preprocess(snap, Placement{Hot: pool, HotFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RestoreTemplate(img, mem.NewTracker("n", 0), mem.DefaultLatencyModel(), mmtemplate.DefaultCostModel(), DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, v := res.Region("heap"); v == nil || v.CountIn(pagetable.RemoteDirect) != 64 {
		t.Fatal("pipeline did not produce an attachable heap")
	}
}

func TestImageRoundTrip(t *testing.T) {
	snap, _, err := Checkpoint("fn", liveSpaces(t), 4, 8, DefaultCheckpointCosts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Function != snap.Function || got.MemBytes() != snap.MemBytes() || got.Threads() != snap.Threads() {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, snap)
	}
	if len(got.Procs[0].Regions) != len(snap.Procs[0].Regions) {
		t.Fatal("regions lost")
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":    "{nope",
		"bad magic":   `{"header":{"magic":"x","version":1},"snapshot":{"Function":"f","Procs":[{"Name":"p","Threads":1}]}}`,
		"bad version": `{"header":{"magic":"trenv-criu-image","version":9},"snapshot":{"Function":"f","Procs":[{"Name":"p","Threads":1}]}}`,
		"no snapshot": `{"header":{"magic":"trenv-criu-image","version":1}}`,
		"no procs":    `{"header":{"magic":"trenv-criu-image","version":1},"snapshot":{"Function":"f"}}`,
		"bad threads": `{"header":{"magic":"trenv-criu-image","version":1},"snapshot":{"Function":"f","Procs":[{"Name":"p","Threads":0}]}}`,
		"bad region":  `{"header":{"magic":"trenv-criu-image","version":1},"snapshot":{"Function":"f","Procs":[{"Name":"p","Threads":1,"Regions":[{"Name":"r","Bytes":100}]}]}}`,
	}
	for name, raw := range cases {
		if _, err := ReadImage(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckpointIncrementalDumpsOnlyDelta(t *testing.T) {
	tr := mem.NewTracker("node", 0)
	as := pagetable.NewAddressSpace(tr, mem.DefaultLatencyModel())
	v, err := as.AddVMA("heap", 0, 256, pagetable.Read|pagetable.Write, pagetable.Anon, nil, 0, pagetable.Local)
	if err != nil {
		t.Fatal(err)
	}
	spaces := []*pagetable.AddressSpace{as}
	costs := DefaultCheckpointCosts()
	rng := rand.New(rand.NewSource(1))

	// Base dump, then mark clean.
	_, fullLat, err := Checkpoint("fn", spaces, 4, 8, costs)
	if err != nil {
		t.Fatal(err)
	}
	as.MarkClean()

	// Write 10 pages, then dump incrementally.
	if _, err := as.Access(rng, v, 10, 10); err != nil {
		t.Fatal(err)
	}
	_, incLat, delta, err := CheckpointIncremental("fn", spaces, 4, 8, costs)
	if err != nil {
		t.Fatal(err)
	}
	if delta != 10*mem.PageSize {
		t.Fatalf("delta = %d, want 10 pages", delta)
	}
	if incLat >= fullLat {
		t.Fatalf("incremental dump (%v) not cheaper than full (%v)", incLat, fullLat)
	}
	// Clean again: a no-write incremental dump copies nothing.
	_, _, delta2, err := CheckpointIncremental("fn", spaces, 4, 8, costs)
	if err != nil {
		t.Fatal(err)
	}
	if delta2 != 0 {
		t.Fatalf("second delta = %d, want 0", delta2)
	}
}

func TestDirtyTrackingSurvivesGrowth(t *testing.T) {
	tr := mem.NewTracker("node", 0)
	as := pagetable.NewAddressSpace(tr, mem.DefaultLatencyModel())
	v, _ := as.AddVMA("heap", 0, 8, pagetable.Read|pagetable.Write, pagetable.Anon, nil, 0, pagetable.Local)
	rng := rand.New(rand.NewSource(1))
	as.Access(rng, v, 2, 2)
	if err := as.Grow(v, 4); err != nil {
		t.Fatal(err)
	}
	as.Access(rng, v, 12, 12)
	if v.DirtyPages() != 12 {
		t.Fatalf("dirty = %d, want all 12", v.DirtyPages())
	}
	as.MarkClean()
	if as.DirtyBytes() != 0 {
		t.Fatal("MarkClean left dirt")
	}
}
