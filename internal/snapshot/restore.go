package snapshot

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/pagetable"
)

// Breakdown itemizes where a restore path's latency went, the memory
// half of the paper's Fig. 4 startup decomposition. Components the path
// did not exercise stay zero (e.g. Attach for full-copy restores).
type Breakdown struct {
	// Orchestration is restore-engine setup: CRIU fork + image parsing,
	// TrEnv's repurpose request, or userfaultfd registration.
	Orchestration time.Duration
	// Mmap is recreating the VMAs.
	Mmap time.Duration
	// Copy is moving memory contents (full image or eager working set),
	// including any concurrent-restore sharing surcharge.
	Copy time.Duration
	// Attach is the mm-template metadata copy.
	Attach time.Duration
	// Procs is rebuilding the process tree (thread clones, fd reopens).
	Procs time.Duration
}

// Total sums the components.
func (b Breakdown) Total() time.Duration {
	return b.Orchestration + b.Mmap + b.Copy + b.Attach + b.Procs
}

// Restored is the outcome of a restore: one address space per process and
// the startup latency the restore path incurred.
type Restored struct {
	Snapshot *Snapshot
	Spaces   []*pagetable.AddressSpace
	Latency  time.Duration
	// BD decomposes Latency by phase; BD.Total() == Latency.
	BD Breakdown
	// CopyPool names the pool the Copy phase read from ("" when the
	// path copied nothing), and CopyPages counts the pages it moved —
	// what a restore-side remote-fetch span reports.
	CopyPool  string
	CopyPages int64
}

// Region finds a region by name across the restored processes.
func (r *Restored) Region(name string) (*pagetable.AddressSpace, *pagetable.VMA) {
	for _, as := range r.Spaces {
		if v := as.Region(name); v != nil {
			return as, v
		}
	}
	return nil, nil
}

// RSS returns the restored processes' total local memory.
func (r *Restored) RSS() int64 {
	var n int64
	for _, as := range r.Spaces {
		n += as.RSS()
	}
	return n
}

// ReleaseAll frees all local memory held by the restored processes.
func (r *Restored) ReleaseAll() {
	for _, as := range r.Spaces {
		as.ReleaseAll()
	}
}

// SetStatsSink mirrors fault accounting from every restored address
// space into s (see pagetable.AddressSpace.SetStatsSink).
func (r *Restored) SetStatsSink(s *pagetable.Stats) {
	for _, as := range r.Spaces {
		as.SetStatsSink(s)
	}
}

// SetClock supplies virtual time to every restored address space, so
// demand faults on in-flight prefetch batches charge their residual
// wait (see pagetable.AddressSpace.SetClock).
func (r *Restored) SetClock(clock func() time.Duration) {
	for _, as := range r.Spaces {
		as.SetClock(clock)
	}
}

// SetWorkingSetLog attaches a first-run working-set recorder to every
// restored address space (see pagetable.AddressSpace.SetWorkingSetLog).
func (r *Restored) SetWorkingSetLog(l *pagetable.WorkingSetLog) {
	for _, as := range r.Spaces {
		as.SetWorkingSetLog(l)
	}
}

// layout rebuilds a snapshot's VMAs into fresh address spaces using the
// same deterministic layout as Store.Preprocess. backing, if non-nil, is
// applied to every region.
func layout(snap *Snapshot, tracker *mem.Tracker, lat mem.LatencyModel, pool *mem.Pool, state pagetable.State) ([]*pagetable.AddressSpace, int, error) {
	var spaces []*pagetable.AddressSpace
	regions := 0
	va := uint64(regionBase)
	var off uint64
	for pi := range snap.Procs {
		as := pagetable.NewAddressSpace(tracker, lat)
		for _, reg := range snap.Procs[pi].Regions {
			pages := reg.Pages()
			if pages == 0 {
				continue
			}
			if _, err := as.AddVMA(reg.Name, va, pages, reg.Prot, reg.Kind, pool, off, state); err != nil {
				for _, s := range spaces {
					s.ReleaseAll()
				}
				as.ReleaseAll()
				return nil, 0, err
			}
			regions++
			va += uint64(pages)*mem.PageSize + regionGap
			off += uint64(pages) * mem.PageSize
		}
		spaces = append(spaces, as)
	}
	return spaces, regions, nil
}

// RestoreFullCopy performs a vanilla CRIU restore: recreate every VMA
// with mmap and copy the full memory image from the snapshot file. All
// pages end up resident, so execution takes no restore faults, but the
// startup pays the copy (the paper's ">60 ms for a 60 MB image").
func RestoreFullCopy(snap *Snapshot, tracker *mem.Tracker, lat mem.LatencyModel, costs Costs) (*Restored, error) {
	spaces, regions, err := layout(snap, tracker, lat, nil, pagetable.Local)
	if err != nil {
		return nil, fmt.Errorf("snapshot: full-copy restore of %q: %w", snap.Function, err)
	}
	bd := Breakdown{
		Orchestration: costs.CRIUOrchestration,
		Mmap:          time.Duration(regions) * costs.MmapPerRegion,
		Copy:          lat.CopyCost(snap.MemBytes()),
		Procs:         procRestoreCost(snap, costs),
	}
	return &Restored{
		Snapshot: snap, Spaces: spaces, Latency: bd.Total(), BD: bd,
		CopyPool: "local", CopyPages: snap.MemBytes() / mem.PageSize,
	}, nil
}

// procRestoreCost totals the per-thread clone and per-fd reopen costs.
func procRestoreCost(snap *Snapshot, costs Costs) time.Duration {
	var d time.Duration
	for pi := range snap.Procs {
		d += time.Duration(snap.Procs[pi].Threads) * costs.ThreadClone
		d += time.Duration(snap.Procs[pi].FDs) * costs.FDRestore
	}
	return d
}

// LazyConfig tunes the REAP/FaaSnap-style restore paths.
type LazyConfig struct {
	// WorkingSet gives, per region name, the page count the recorded
	// working set covers (what a previous profiled invocation touched).
	WorkingSet map[string]int
	// Coverage is the fraction of the current invocation's touches that
	// the recorded set actually predicts (REAP reports ~90%-class hit
	// rates; deviations fault through userfaultfd at execution time).
	Coverage float64
	// EagerFraction is the part of the recorded set copied synchronously
	// before the function starts. REAP uses 1.0; FaaSnap copies a small
	// eager set and prefetches the rest concurrently with execution.
	EagerFraction float64
	// AsyncMissBase/AsyncMissPerLoad model the chance that execution
	// touches an async-prefetched page before the prefetcher delivers it;
	// the race worsens as concurrent restores contend for the handler.
	AsyncMissBase    float64
	AsyncMissPerLoad float64
}

// ReapConfig returns the REAP-style configuration for a working set.
func ReapConfig(ws map[string]int) LazyConfig {
	return LazyConfig{WorkingSet: ws, Coverage: 0.88, EagerFraction: 1.0}
}

// FaaSnapConfig returns the FaaSnap-style configuration for a working set.
func FaaSnapConfig(ws map[string]int) LazyConfig {
	return LazyConfig{
		WorkingSet: ws, Coverage: 0.88, EagerFraction: 0.3,
		AsyncMissBase: 0.15, AsyncMissPerLoad: 0.02,
	}
}

// RestoreLazy performs a lazy restore from a tmpfs-resident snapshot
// served through userfaultfd. Eagerly-copied pages are resident; the rest
// of the recorded working set is either delivered by async prefetch
// (FaaSnap) or left to fault; pages outside the recorded set always fault
// during execution.
func RestoreLazy(rng *rand.Rand, snap *Snapshot, tracker *mem.Tracker, tmpfs *mem.Pool, cfg LazyConfig, lat mem.LatencyModel, costs Costs) (*Restored, error) {
	if tmpfs.Kind() != mem.Tmpfs {
		return nil, fmt.Errorf("snapshot: lazy restore needs a tmpfs pool, got %s", tmpfs.Kind())
	}
	if cfg.Coverage <= 0 || cfg.Coverage > 1 || cfg.EagerFraction < 0 || cfg.EagerFraction > 1 {
		return nil, fmt.Errorf("snapshot: bad lazy config: coverage=%v eager=%v", cfg.Coverage, cfg.EagerFraction)
	}
	if err := tmpfs.Unavailable(); err != nil {
		return nil, fmt.Errorf("snapshot: lazy restore of %q: %w", snap.Function, err)
	}
	spaces, regions, err := layout(snap, tracker, lat, tmpfs, pagetable.RemoteLazy)
	if err != nil {
		return nil, fmt.Errorf("snapshot: lazy restore of %q: %w", snap.Function, err)
	}
	release := func() {
		for _, s := range spaces {
			s.ReleaseAll()
		}
	}
	// Async prefetch miss ratio depends on handler load right now.
	miss := cfg.AsyncMissBase + cfg.AsyncMissPerLoad*float64(tmpfs.Outstanding())
	if miss > 0.75 {
		miss = 0.75
	}
	var eagerBytes int64
	for _, as := range spaces {
		for _, v := range as.VMAs() {
			ws := cfg.WorkingSet[v.Name]
			if ws > v.Pages() {
				ws = v.Pages()
			}
			recorded := int(float64(ws) * cfg.Coverage)
			if recorded == 0 {
				continue
			}
			eager := int(float64(recorded) * cfg.EagerFraction)
			// Async prefetch delivers the non-eager recorded pages that
			// win the race against execution.
			delivered := eager + int(float64(recorded-eager)*(1-miss))
			if delivered > 0 {
				if err := as.MakeResident(v, 0, delivered); err != nil {
					release()
					return nil, err
				}
			}
			eagerBytes += int64(eager) * mem.PageSize
			_ = rng // reserved for future stochastic delivery models
		}
	}
	// Concurrent restores share the snapshot medium: N in-flight eager
	// copies each run ~N times slower (this is what ruins the lazy
	// baselines' P99 during bursts of large-image restores, §9.2.2).
	sharing := float64(tmpfs.Outstanding())
	if sharing < 1 {
		sharing = 1
	}
	if sharing > 8 {
		sharing = 8 // the medium has parallelism; degradation saturates
	}
	bd := Breakdown{
		Orchestration: costs.CRIUOrchestration + costs.UffdSetup,
		Mmap:          time.Duration(regions) * costs.MmapPerRegion,
		Copy:          time.Duration(float64(eagerBytes) / costs.TmpfsBandwidth * float64(time.Second) * sharing),
		Procs:         procRestoreCost(snap, costs),
	}
	res := &Restored{Snapshot: snap, Spaces: spaces, Latency: bd.Total(), BD: bd}
	if eagerBytes > 0 {
		res.CopyPool = tmpfs.Kind().String()
		res.CopyPages = eagerBytes / mem.PageSize
	}
	return res, nil
}

// RestoreTemplate performs TrEnv's restore: join the repurposed sandbox
// and attach the preprocessed mm-templates. Only metadata is copied; all
// image pages stay in the pool until CoW or lazy touch.
func RestoreTemplate(img *Image, tracker *mem.Tracker, lat mem.LatencyModel, attach mmtemplate.CostModel, costs Costs) (*Restored, error) {
	snap := img.Snapshot
	// A template attach is only metadata, but the resulting PTEs point at
	// pool pages — attaching against a pool inside an injected outage
	// window would wedge on first touch. Fail fast with the typed error
	// so the platform can fall back to a local cold start.
	for _, pool := range img.Pools() {
		if err := pool.Unavailable(); err != nil {
			return nil, fmt.Errorf("snapshot: template restore of %q: %w", snap.Function, err)
		}
	}
	res := &Restored{Snapshot: snap}
	bd := Breakdown{Orchestration: costs.RepurposeOrchestration}
	for pi, tpl := range img.Templates {
		as, d, err := tpl.Attach(tracker, lat, attach)
		if err != nil {
			res.ReleaseAll()
			return nil, fmt.Errorf("snapshot: template restore of %q: %w", snap.Function, err)
		}
		res.Spaces = append(res.Spaces, as)
		bd.Attach += d
		bd.Procs += time.Duration(snap.Procs[pi].Threads) * costs.ThreadClone
		bd.Procs += time.Duration(snap.Procs[pi].FDs) * costs.FDRestore
	}
	res.Latency = bd.Total()
	res.BD = bd
	return res, nil
}
