// Package snapshot models CRIU-style checkpoint/restore and TrEnv's
// preprocessing pipeline (§4, Figure 6): a function's post-initialization
// state is captured as process images, deduplicated into consolidated
// images on a memory pool, and turned into one mm-template per process.
//
// It also implements the restore engines the evaluation compares:
//
//   - FullCopy: vanilla CRIU — mmap storm plus a full memory-image copy.
//   - Lazy: REAP-style — eagerly copy the recorded working set from a
//     tmpfs snapshot, serve the rest on demand via userfaultfd.
//   - Prefetch: FaaSnap-style — start with a minimal eager set and
//     prefetch asynchronously, racing execution.
//   - TemplateAttach: TrEnv — attach the mm-template (metadata only).
package snapshot

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/pagetable"
)

// Region is one memory region of a checkpointed process.
type Region struct {
	Name  string
	Bytes int64
	Prot  pagetable.Prot
	Kind  pagetable.MapKind
	// ContentKey names the region's content for deduplication. Regions
	// with the same key (e.g. "lib/python3.10" across all Python
	// functions) share one copy in the consolidated image. An empty key
	// means the content is unique; a per-snapshot key is derived.
	ContentKey string
}

// Pages returns the region's page count.
func (r Region) Pages() int { return mem.PagesFor(r.Bytes) }

// ProcessImage is the checkpointed state of one process.
type ProcessImage struct {
	Name    string
	Threads int
	FDs     int
	Regions []Region
}

// MemBytes returns the process's checkpointed memory size.
func (p *ProcessImage) MemBytes() int64 {
	var n int64
	for _, r := range p.Regions {
		n += int64(r.Pages()) * mem.PageSize
	}
	return n
}

// Snapshot is a function's complete post-initialization state.
type Snapshot struct {
	Function string
	// Owner identifies the tenant. With Store.PerUserDedup set, regions
	// deduplicate only among snapshots of the same owner — the paper's
	// mitigation for memory-deduplication side channels (§8.1.2).
	Owner string
	Procs []ProcessImage
}

// MemBytes returns the total checkpointed memory across processes.
func (s *Snapshot) MemBytes() int64 {
	var n int64
	for i := range s.Procs {
		n += s.Procs[i].MemBytes()
	}
	return n
}

// Threads returns the total thread count across processes.
func (s *Snapshot) Threads() int {
	var n int
	for i := range s.Procs {
		n += s.Procs[i].Threads
	}
	return n
}

// Placement decides where a preprocessed image's pages live. HotFraction
// of each region's pages (a prefix — the hot head) goes to Hot; the rest
// to Cold. With HotFraction == 1 everything lands on Hot, which is the
// plain T-CXL / T-RDMA configuration.
type Placement struct {
	Hot         *mem.Pool
	Cold        *mem.Pool
	HotFraction float64
}

// Validate checks the placement is usable.
func (p Placement) Validate() error {
	if p.Hot == nil {
		return fmt.Errorf("snapshot: placement has no hot pool")
	}
	if p.HotFraction < 0 || p.HotFraction > 1 {
		return fmt.Errorf("snapshot: hot fraction %v out of range", p.HotFraction)
	}
	if p.HotFraction < 1 && p.Cold == nil {
		return fmt.Errorf("snapshot: hot fraction %v needs a cold pool", p.HotFraction)
	}
	return nil
}

// Image is a preprocessed snapshot: consolidated blocks in pools plus one
// mm-template per process (step A2 of Figure 6).
type Image struct {
	Snapshot  *Snapshot
	Templates []*mmtemplate.Template
	// MetadataBytes is the summed template metadata size.
	MetadataBytes int64
	// WSLog is the image's working-set log: the first run against the
	// template records its fault order here, every later restore can
	// replay it as batched prefetches. Shared rack-wide with the image.
	WSLog *pagetable.WorkingSetLog

	store     *Store
	blockKeys []string
	pools     []*mem.Pool // distinct pools backing the image's pages
}

// Pools returns the distinct pools the image's pages live on, in
// placement order (hot first). Restores probe these for availability
// before attaching templates.
func (img *Image) Pools() []*mem.Pool { return img.pools }

func (img *Image) notePool(p *mem.Pool) {
	for _, q := range img.pools {
		if q == p {
			return
		}
	}
	img.pools = append(img.pools, p)
}

// Store preprocesses snapshots into a block store + template registry.
type Store struct {
	blocks   *mem.BlockStore
	cold     *mem.BlockStore // lazily created per cold pool
	coldPool *mem.Pool
	reg      *mmtemplate.Registry
	images   map[string]*Image
	versions map[string]int // per-function preprocess generation

	// PerUserDedup restricts content deduplication to snapshots of the
	// same owner, trading pool memory for side-channel resistance
	// (FLUSH+RELOAD-style attacks need attacker/victim page sharing).
	PerUserDedup bool
}

// NewStore creates a store placing consolidated images into blocks'
// pool(s) and registering templates with reg.
func NewStore(blocks *mem.BlockStore, reg *mmtemplate.Registry) *Store {
	return &Store{blocks: blocks, reg: reg, images: make(map[string]*Image), versions: make(map[string]int)}
}

// Registry returns the template registry.
func (st *Store) Registry() *mmtemplate.Registry { return st.reg }

// Blocks returns the hot-tier block store.
func (st *Store) Blocks() *mem.BlockStore { return st.blocks }

// Image returns the preprocessed image for function, or nil.
func (st *Store) Image(function string) *Image { return st.images[function] }

// regionBase is the virtual address of the first region; regions are laid
// out sequentially with a guard gap, like CRIU's recorded layouts.
const (
	regionBase = 0x0000_4000_0000
	regionGap  = 1 << 20
)

func (st *Store) storeFor(pool *mem.Pool) *mem.BlockStore {
	if pool == st.blocks.Pool() {
		return st.blocks
	}
	if st.cold == nil || st.coldPool != pool {
		st.cold = mem.NewBlockStore(pool)
		st.coldPool = pool
	}
	return st.cold
}

// Preprocess deduplicates snap's regions into consolidated images on the
// placement's pools and builds one mm-template per process. It is the
// offline step (A1-A2); nothing here is on any invocation's critical
// path. Preprocessing the same function twice is an error.
func (st *Store) Preprocess(snap *Snapshot, place Placement) (*Image, error) {
	if err := place.Validate(); err != nil {
		return nil, err
	}
	if _, ok := st.images[snap.Function]; ok {
		return nil, fmt.Errorf("snapshot: function %q already preprocessed", snap.Function)
	}
	st.versions[snap.Function]++
	version := st.versions[snap.Function]
	img := &Image{Snapshot: snap, store: st, WSLog: &pagetable.WorkingSetLog{}}
	cleanup := func() {
		for _, k := range img.blockKeys {
			st.blocks.Release(k)
		}
	}
	va := uint64(regionBase)
	for pi := range snap.Procs {
		proc := &snap.Procs[pi]
		tpl := st.reg.Create(fmt.Sprintf("%s/%s", snap.Function, proc.Name))
		for _, r := range snap.Procs[pi].Regions {
			pages := r.Pages()
			if pages == 0 {
				continue
			}
			key := r.ContentKey
			if key == "" {
				// Private content: unique per function *generation*, so a
				// redeployed version never collides with a retired one.
				key = fmt.Sprintf("%s@v%d/%s/%s", snap.Function, version, proc.Name, r.Name)
			} else if st.PerUserDedup {
				key = snap.Owner + "|" + key
			}
			length := int64(pages) * mem.PageSize
			if err := tpl.AddMap(r.Name, va, length, r.Prot, r.Kind); err != nil {
				cleanup()
				return nil, err
			}
			hotPages := pages
			if place.HotFraction < 1 {
				hotPages = int(float64(pages) * place.HotFraction)
			}
			if hotPages > 0 {
				b, _, err := st.storeFor(place.Hot).Put(key+"#hot", hotPages)
				if err != nil {
					cleanup()
					return nil, err
				}
				img.blockKeys = append(img.blockKeys, key+"#hot")
				if err := tpl.SetupPT(va, int64(hotPages)*mem.PageSize, b.Offset, place.Hot); err != nil {
					cleanup()
					return nil, err
				}
				img.notePool(place.Hot)
			}
			if cold := pages - hotPages; cold > 0 {
				b, _, err := st.storeFor(place.Cold).Put(key+"#cold", cold)
				if err != nil {
					cleanup()
					return nil, err
				}
				if err := tpl.SetupPT(va+uint64(hotPages)*mem.PageSize, int64(cold)*mem.PageSize, b.Offset, place.Cold); err != nil {
					cleanup()
					return nil, err
				}
				img.notePool(place.Cold)
			}
			va += uint64(length) + regionGap
		}
		img.Templates = append(img.Templates, tpl)
		img.MetadataBytes += tpl.MetadataBytes()
	}
	st.images[snap.Function] = img
	return img, nil
}

// Remove releases the consolidated blocks and templates of a function.
func (st *Store) Remove(function string) error {
	img, ok := st.images[function]
	if !ok {
		return fmt.Errorf("snapshot: no image for %q", function)
	}
	delete(st.images, function)
	return st.ReleaseImage(img)
}

// ReleaseImage frees a (possibly retired) image's pool blocks and
// destroys its templates. Instances already attached keep running: they
// own copies of the metadata, and the CoW discipline means they never
// depended on being able to write pool pages.
func (st *Store) ReleaseImage(img *Image) error {
	for _, k := range img.blockKeys {
		if err := st.blocks.Release(k); err != nil {
			return err
		}
	}
	img.blockKeys = nil
	for _, tpl := range img.Templates {
		st.reg.Destroy(tpl.ID())
	}
	return nil
}

// Update replaces a function's preprocessed image with a new snapshot
// (redeployment). The old image is returned *retired* — removed from the
// index but with its pool blocks intact — so the platform can keep
// serving in-flight instances and release it once they drain.
func (st *Store) Update(snap *Snapshot, place Placement) (fresh, retired *Image, err error) {
	old, ok := st.images[snap.Function]
	if !ok {
		return nil, nil, fmt.Errorf("snapshot: update of unknown function %q", snap.Function)
	}
	delete(st.images, snap.Function)
	img, err := st.Preprocess(snap, place)
	if err != nil {
		st.images[snap.Function] = old // restore on failure
		return nil, nil, err
	}
	return img, old, nil
}

// Costs prices the restore paths' fixed components.
type Costs struct {
	// CRIUOrchestration is forking criu, parsing image files, and
	// process-tree setup for a full restore.
	CRIUOrchestration time.Duration
	// RepurposeOrchestration is TrEnv's lighter "repurpose" request that
	// joins an existing sandbox instead of rebuilding one (§4, step B3).
	RepurposeOrchestration time.Duration
	// MmapPerRegion is the syscall cost to recreate one VMA.
	MmapPerRegion time.Duration
	// ThreadClone is the per-thread clone+register-restore cost.
	ThreadClone time.Duration
	// FDRestore is the per-descriptor reopen cost.
	FDRestore time.Duration
	// UffdSetup is registering userfaultfd ranges (REAP/FaaSnap).
	UffdSetup time.Duration
	// TmpfsBandwidth is the copy rate from tmpfs snapshot files during
	// eager working-set restore.
	TmpfsBandwidth float64 // bytes/s
}

// DefaultCosts returns restore constants matching the paper's breakdowns.
func DefaultCosts() Costs {
	return Costs{
		CRIUOrchestration:      3 * time.Millisecond,
		RepurposeOrchestration: 1200 * time.Microsecond,
		MmapPerRegion:          4 * time.Microsecond,
		ThreadClone:            60 * time.Microsecond,
		FDRestore:              3 * time.Microsecond,
		UffdSetup:              250 * time.Microsecond,
		TmpfsBandwidth:         2 << 30, // 2 GiB/s
	}
}
