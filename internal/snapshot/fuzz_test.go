package snapshot

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadImage hardens the image parser: arbitrary input must never
// panic, and valid output must satisfy the snapshot invariants.
func FuzzReadImage(f *testing.F) {
	// Seed with a valid image and near-miss corruptions.
	var buf bytes.Buffer
	snap := testSnap("seed", 8, 2)
	if err := WriteImage(&buf, snap); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"header":{"magic":"trenv-criu-image","version":1}}`)
	f.Add(`{}`)
	f.Add(``)
	f.Add(`{"header":{"magic":"trenv-criu-image","version":1},"snapshot":{"Function":"f","Procs":[{"Name":"p","Threads":1}]}}`)

	f.Fuzz(func(t *testing.T, raw string) {
		got, err := ReadImage(strings.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted images must hold the validated invariants.
		if got.Function == "" || len(got.Procs) == 0 {
			t.Fatalf("parser accepted invalid snapshot: %+v", got)
		}
		for _, p := range got.Procs {
			if p.Threads < 1 {
				t.Fatalf("accepted proc with %d threads", p.Threads)
			}
		}
		// Round trip: re-encode and re-parse equals itself.
		var out bytes.Buffer
		if err := WriteImage(&out, got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadImage(&out)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if again.MemBytes() != got.MemBytes() || again.Threads() != got.Threads() {
			t.Fatal("round trip not stable")
		}
	})
}
