package snapshot

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/mem"
	"repro/internal/pagetable"
)

// CheckpointCosts prices the dump side of CRIU (step A1 of Figure 6):
// freezing the cgroup, walking the process tree, and writing the image.
type CheckpointCosts struct {
	// Freeze is the cgroup.freeze round trip.
	Freeze time.Duration
	// PerThread is seizing + register capture per thread.
	PerThread time.Duration
	// PerRegion is /proc/pid/smaps parsing + VMA capture per region.
	PerRegion time.Duration
	// DumpBandwidth is the memory-image write rate.
	DumpBandwidth float64 // bytes/s
}

// DefaultCheckpointCosts returns dump-side constants.
func DefaultCheckpointCosts() CheckpointCosts {
	return CheckpointCosts{
		Freeze:        2 * time.Millisecond,
		PerThread:     30 * time.Microsecond,
		PerRegion:     10 * time.Microsecond,
		DumpBandwidth: 1.5 * (1 << 30),
	}
}

// Checkpoint captures running address spaces into a Snapshot — the
// offline A1 step that the platform later preprocesses into consolidated
// images and mm-templates. Regions keep their layout and protections;
// content keys are per-function (a checkpoint of a live process has no
// a-priori dedup identity — dedup happens when Preprocess interns
// identical content). It returns the snapshot and the dump latency.
func Checkpoint(function string, spaces []*pagetable.AddressSpace, threads, fds int, costs CheckpointCosts) (*Snapshot, time.Duration, error) {
	if len(spaces) == 0 {
		return nil, 0, fmt.Errorf("snapshot: checkpoint of %q with no processes", function)
	}
	if threads < len(spaces) {
		return nil, 0, fmt.Errorf("snapshot: %d threads for %d processes", threads, len(spaces))
	}
	snap := &Snapshot{Function: function}
	regions := 0
	var dumpBytes int64
	for pi, as := range spaces {
		proc := ProcessImage{Name: fmt.Sprintf("proc%d", pi), FDs: fds / len(spaces)}
		for _, v := range as.VMAs() {
			proc.Regions = append(proc.Regions, Region{
				Name:  v.Name,
				Bytes: v.Bytes(),
				Prot:  v.Prot,
				Kind:  v.Kind,
			})
			regions++
			dumpBytes += v.Bytes()
		}
		snap.Procs = append(snap.Procs, proc)
	}
	// Thread distribution: first process gets the remainder.
	per := threads / len(spaces)
	snap.Procs[0].Threads = threads - per*(len(spaces)-1)
	for i := 1; i < len(snap.Procs); i++ {
		snap.Procs[i].Threads = per
	}
	d := costs.Freeze +
		time.Duration(threads)*costs.PerThread +
		time.Duration(regions)*costs.PerRegion +
		time.Duration(float64(dumpBytes)/costs.DumpBandwidth*float64(time.Second))
	return snap, d, nil
}

// CheckpointIncremental performs CRIU's pre-dump/dump split: a prior
// full Checkpoint (plus MarkClean) captured the base; this dump copies
// only pages written since, so the stop-the-world window shrinks to the
// write delta. It returns the (full-layout) snapshot, the dump latency,
// and the delta bytes actually copied.
func CheckpointIncremental(function string, spaces []*pagetable.AddressSpace, threads, fds int, costs CheckpointCosts) (*Snapshot, time.Duration, int64, error) {
	snap, _, err := Checkpoint(function, spaces, threads, fds, costs)
	if err != nil {
		return nil, 0, 0, err
	}
	var deltaBytes int64
	regions := 0
	for _, as := range spaces {
		deltaBytes += as.DirtyBytes()
		regions += len(as.VMAs())
	}
	d := costs.Freeze +
		time.Duration(threads)*costs.PerThread +
		time.Duration(regions)*costs.PerRegion +
		time.Duration(float64(deltaBytes)/costs.DumpBandwidth*float64(time.Second))
	for _, as := range spaces {
		as.MarkClean()
	}
	return snap, d, deltaBytes, nil
}

// imageHeader guards the serialized format.
type imageHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
}

const (
	imageMagic   = "trenv-criu-image"
	imageVersion = 1
)

type imageFile struct {
	Header   imageHeader `json:"header"`
	Snapshot *Snapshot   `json:"snapshot"`
}

// WriteImage serializes a snapshot as a CRIU-style image file.
func WriteImage(w io.Writer, snap *Snapshot) error {
	enc := json.NewEncoder(w)
	return enc.Encode(imageFile{
		Header:   imageHeader{Magic: imageMagic, Version: imageVersion},
		Snapshot: snap,
	})
}

// ReadImage parses an image file written by WriteImage, validating the
// header and the snapshot's internal consistency.
func ReadImage(r io.Reader) (*Snapshot, error) {
	var f imageFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("snapshot: parse image: %w", err)
	}
	if f.Header.Magic != imageMagic {
		return nil, fmt.Errorf("snapshot: bad image magic %q", f.Header.Magic)
	}
	if f.Header.Version != imageVersion {
		return nil, fmt.Errorf("snapshot: unsupported image version %d", f.Header.Version)
	}
	if f.Snapshot == nil || f.Snapshot.Function == "" || len(f.Snapshot.Procs) == 0 {
		return nil, fmt.Errorf("snapshot: image is missing snapshot data")
	}
	for pi := range f.Snapshot.Procs {
		p := &f.Snapshot.Procs[pi]
		if p.Threads < 1 || p.FDs < 0 {
			return nil, fmt.Errorf("snapshot: image proc %d has threads=%d fds=%d", pi, p.Threads, p.FDs)
		}
		for _, reg := range p.Regions {
			if reg.Bytes <= 0 || reg.Bytes%mem.PageSize != 0 {
				return nil, fmt.Errorf("snapshot: image region %q has %d bytes", reg.Name, reg.Bytes)
			}
		}
	}
	return f.Snapshot, nil
}
