package snapshot

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/pagetable"
)

func testSnap(name string, memMB int64, threads int) *Snapshot {
	return &Snapshot{
		Function: name,
		Procs: []ProcessImage{{
			Name:    "main",
			Threads: threads,
			FDs:     20,
			Regions: []Region{
				{Name: "runtime", Bytes: memMB << 20 / 2, Prot: pagetable.Read | pagetable.Exec, Kind: pagetable.File, ContentKey: "python3.10"},
				{Name: "libs", Bytes: memMB << 20 / 4, Prot: pagetable.Read, Kind: pagetable.File, ContentKey: "common-libs"},
				{Name: "heap", Bytes: memMB << 20 / 4, Prot: pagetable.Read | pagetable.Write, Kind: pagetable.Anon},
			},
		}},
	}
}

func newStore() (*Store, *mem.Pool) {
	lat := mem.DefaultLatencyModel()
	pool := mem.NewPool(mem.CXL, 0, lat)
	return NewStore(mem.NewBlockStore(pool), mmtemplate.NewRegistry()), pool
}

func TestPreprocessDeduplicatesSharedRegions(t *testing.T) {
	st, pool := newStore()
	a := testSnap("fnA", 64, 4)
	b := testSnap("fnB", 64, 4)
	place := Placement{Hot: pool, HotFraction: 1}
	if _, err := st.Preprocess(a, place); err != nil {
		t.Fatal(err)
	}
	afterA := pool.Tracker().Used()
	if _, err := st.Preprocess(b, place); err != nil {
		t.Fatal(err)
	}
	afterB := pool.Tracker().Used()
	// Only fnB's private heap should be new: runtime+libs dedup.
	heapBytes := int64(mem.PagesFor(16<<20)) * mem.PageSize
	if got := afterB - afterA; got != heapBytes {
		t.Fatalf("second function added %d bytes, want only its heap (%d)", got, heapBytes)
	}
	if st.Blocks().DedupRatio() == 0 {
		t.Fatal("no dedup recorded")
	}
}

func TestPreprocessBuildsTemplates(t *testing.T) {
	st, pool := newStore()
	snap := testSnap("fn", 64, 4)
	img, err := st.Preprocess(snap, Placement{Hot: pool, HotFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Templates) != 1 {
		t.Fatalf("templates = %d", len(img.Templates))
	}
	tpl := img.Templates[0]
	if tpl.Maps() != 3 {
		t.Fatalf("maps = %d", tpl.Maps())
	}
	if tpl.RemoteBytes() != snap.MemBytes() {
		t.Fatalf("remote bytes %d != image %d", tpl.RemoteBytes(), snap.MemBytes())
	}
	if img.MetadataBytes <= 0 || img.MetadataBytes > 1<<20 {
		t.Fatalf("metadata = %d, want (0, 1MB]", img.MetadataBytes)
	}
	if st.Image("fn") != img {
		t.Fatal("image not indexed")
	}
	if _, err := st.Preprocess(snap, Placement{Hot: pool, HotFraction: 1}); err == nil {
		t.Fatal("double preprocess accepted")
	}
}

func TestPreprocessHotColdSplit(t *testing.T) {
	lat := mem.DefaultLatencyModel()
	cxl := mem.NewPool(mem.CXL, 0, lat)
	rdma := mem.NewPool(mem.RDMA, 0, lat)
	st := NewStore(mem.NewBlockStore(cxl), mmtemplate.NewRegistry())
	snap := testSnap("fn", 64, 4)
	img, err := st.Preprocess(snap, Placement{Hot: cxl, Cold: rdma, HotFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if cxl.Tracker().Used() == 0 || rdma.Tracker().Used() == 0 {
		t.Fatalf("split not applied: cxl=%d rdma=%d", cxl.Tracker().Used(), rdma.Tracker().Used())
	}
	tr := mem.NewTracker("node", 0)
	res, err := RestoreTemplate(img, tr, lat, mmtemplate.DefaultCostModel(), DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	_, v := res.Region("heap")
	if v.CountIn(pagetable.RemoteDirect) == 0 || v.CountIn(pagetable.RemoteLazy) == 0 {
		t.Fatalf("heap not split: direct=%d lazy=%d", v.CountIn(pagetable.RemoteDirect), v.CountIn(pagetable.RemoteLazy))
	}
}

func TestPlacementValidation(t *testing.T) {
	_, pool := newStore()
	if err := (Placement{}).Validate(); err == nil {
		t.Fatal("empty placement validated")
	}
	if err := (Placement{Hot: pool, HotFraction: 0.5}).Validate(); err == nil {
		t.Fatal("partial placement without cold pool validated")
	}
	if err := (Placement{Hot: pool, HotFraction: 2}).Validate(); err == nil {
		t.Fatal("fraction > 1 validated")
	}
	if err := (Placement{Hot: pool, HotFraction: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveReleasesBlocks(t *testing.T) {
	st, pool := newStore()
	snap := testSnap("fn", 32, 2)
	if _, err := st.Preprocess(snap, Placement{Hot: pool, HotFraction: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("fn"); err != nil {
		t.Fatal(err)
	}
	if pool.Tracker().Used() != 0 {
		t.Fatalf("pool holds %d bytes after remove", pool.Tracker().Used())
	}
	if st.Registry().Len() != 0 {
		t.Fatal("templates leaked")
	}
	if err := st.Remove("fn"); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestRestoreFullCopyResidentAndCostly(t *testing.T) {
	lat := mem.DefaultLatencyModel()
	snap := testSnap("fn", 60, 14)
	tr := mem.NewTracker("node", 0)
	res, err := RestoreFullCopy(snap, tr, lat, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if res.RSS() != snap.MemBytes() {
		t.Fatalf("rss = %d, want full image %d", res.RSS(), snap.MemBytes())
	}
	// Paper: a 60 MB image takes over 60 ms to copy.
	if res.Latency < lat.CopyCost(snap.MemBytes()) {
		t.Fatalf("latency %v below pure copy cost", res.Latency)
	}
	// All pages resident: execution faults nothing.
	rng := rand.New(rand.NewSource(1))
	as, v := res.Region("heap")
	ar, err := as.Access(rng, v, v.Pages(), v.Pages()/2)
	if err != nil {
		t.Fatal(err)
	}
	if ar.MajorFaults+ar.MinorFaults != 0 {
		t.Fatalf("full-copy restore left faults: %+v", ar)
	}
	res.ReleaseAll()
	if tr.Used() != 0 {
		t.Fatal("release leaked")
	}
}

func tmpfsPool() *mem.Pool { return mem.NewPool(mem.Tmpfs, 0, mem.DefaultLatencyModel()) }

func wsFor(snap *Snapshot, frac float64) map[string]int {
	ws := make(map[string]int)
	for _, r := range snap.Procs[0].Regions {
		ws[r.Name] = int(float64(r.Pages()) * frac)
	}
	return ws
}

func TestRestoreLazyReapSemantics(t *testing.T) {
	lat := mem.DefaultLatencyModel()
	snap := testSnap("fn", 64, 14)
	tr := mem.NewTracker("node", 0)
	tp := tmpfsPool()
	ws := wsFor(snap, 0.5)
	rng := rand.New(rand.NewSource(1))
	res, err := RestoreLazy(rng, snap, tr, tp, ReapConfig(ws), lat, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	// REAP eagerly restores coverage*ws; much less than the full image.
	if res.RSS() == 0 || res.RSS() >= snap.MemBytes() {
		t.Fatalf("rss = %d, want partial residency (image %d)", res.RSS(), snap.MemBytes())
	}
	full, _ := RestoreFullCopy(snap, mem.NewTracker("n2", 0), lat, DefaultCosts())
	if res.Latency >= full.Latency {
		t.Fatalf("lazy restore (%v) not faster than full copy (%v)", res.Latency, full.Latency)
	}
	// Touching the whole working set faults the uncovered tail via uffd.
	as, v := res.Region("heap")
	ar, err := as.Access(rng, v, ws["heap"], 0)
	if err != nil {
		t.Fatal(err)
	}
	if ar.MajorFaults == 0 {
		t.Fatal("REAP coverage misses should fault at execution")
	}
	if tp.Fetches() == 0 {
		t.Fatal("uffd faults should hit the tmpfs pool")
	}
}

func TestRestoreFaaSnapFasterStartupThanReap(t *testing.T) {
	lat := mem.DefaultLatencyModel()
	snap := testSnap("fn", 128, 14)
	ws := wsFor(snap, 0.6)
	rng := rand.New(rand.NewSource(1))
	reap, err := RestoreLazy(rng, snap, mem.NewTracker("a", 0), tmpfsPool(), ReapConfig(ws), lat, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	faasnap, err := RestoreLazy(rng, snap, mem.NewTracker("b", 0), tmpfsPool(), FaaSnapConfig(ws), lat, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if faasnap.Latency >= reap.Latency {
		t.Fatalf("FaaSnap startup (%v) not faster than REAP (%v)", faasnap.Latency, reap.Latency)
	}
}

func TestRestoreLazyMissRatioGrowsWithLoad(t *testing.T) {
	lat := mem.DefaultLatencyModel()
	snap := testSnap("fn", 64, 4)
	ws := wsFor(snap, 0.6)
	rng := rand.New(rand.NewSource(1))
	quiet := tmpfsPool()
	r1, _ := RestoreLazy(rng, snap, mem.NewTracker("a", 0), quiet, FaaSnapConfig(ws), lat, DefaultCosts())
	busy := tmpfsPool()
	for i := 0; i < 30; i++ {
		busy.BeginFetch()
	}
	r2, _ := RestoreLazy(rng, snap, mem.NewTracker("b", 0), busy, FaaSnapConfig(ws), lat, DefaultCosts())
	if r2.RSS() >= r1.RSS() {
		t.Fatalf("under load async prefetch should deliver less: quiet=%d busy=%d", r1.RSS(), r2.RSS())
	}
}

func TestRestoreLazyRejectsWrongPool(t *testing.T) {
	lat := mem.DefaultLatencyModel()
	snap := testSnap("fn", 8, 1)
	rng := rand.New(rand.NewSource(1))
	cxl := mem.NewPool(mem.CXL, 0, lat)
	if _, err := RestoreLazy(rng, snap, mem.NewTracker("a", 0), cxl, ReapConfig(nil), lat, DefaultCosts()); err == nil {
		t.Fatal("lazy restore accepted non-tmpfs pool")
	}
}

func TestRestoreTemplateIsMetadataOnly(t *testing.T) {
	st, pool := newStore()
	lat := mem.DefaultLatencyModel()
	snap := testSnap("fn", 855, 141) // IR-sized
	img, err := st.Preprocess(snap, Placement{Hot: pool, HotFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := mem.NewTracker("node", 0)
	res, err := RestoreTemplate(img, tr, lat, mmtemplate.DefaultCostModel(), DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if res.RSS() != 0 {
		t.Fatalf("template restore allocated %d local bytes", res.RSS())
	}
	full, _ := RestoreFullCopy(snap, mem.NewTracker("n2", 0), lat, DefaultCosts())
	if res.Latency*10 > full.Latency {
		t.Fatalf("template restore (%v) should be >>10x faster than full copy (%v)", res.Latency, full.Latency)
	}
	// IR-class startup: paper reports 18 ms including sandbox work;
	// the pure restore path must come in well under that.
	if res.Latency > 15_000_000 { // 15ms
		t.Fatalf("template restore = %v, want < 15ms", res.Latency)
	}
}

func TestRestoredRegionLookup(t *testing.T) {
	lat := mem.DefaultLatencyModel()
	snap := testSnap("fn", 8, 1)
	res, err := RestoreFullCopy(snap, mem.NewTracker("n", 0), lat, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if as, v := res.Region("heap"); as == nil || v == nil {
		t.Fatal("heap not found")
	}
	if as, v := res.Region("nope"); as != nil || v != nil {
		t.Fatal("phantom region found")
	}
}

func TestSnapshotAccessors(t *testing.T) {
	snap := testSnap("fn", 64, 7)
	if snap.Threads() != 7 {
		t.Fatalf("threads = %d", snap.Threads())
	}
	want := int64(mem.PagesFor(32<<20)+mem.PagesFor(16<<20)+mem.PagesFor(16<<20)) * mem.PageSize
	if snap.MemBytes() != want {
		t.Fatalf("mem bytes = %d, want %d", snap.MemBytes(), want)
	}
}
