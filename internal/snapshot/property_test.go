package snapshot

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/mmtemplate"
	"repro/internal/pagetable"
)

// randomSnapshot builds a structurally-valid snapshot from fuzz input.
func randomSnapshot(name string, regionSizes []uint16) *Snapshot {
	snap := &Snapshot{Function: name}
	proc := ProcessImage{Name: "main", Threads: 4, FDs: 8}
	for i, sz := range regionSizes {
		pages := int(sz%512) + 1
		prot := pagetable.Read
		if i%2 == 0 {
			prot |= pagetable.Write
		}
		proc.Regions = append(proc.Regions, Region{
			Name:  fmt.Sprintf("r%d", i),
			Bytes: int64(pages) * mem.PageSize,
			Prot:  prot,
			Kind:  pagetable.Anon,
		})
	}
	snap.Procs = []ProcessImage{proc}
	return snap
}

// Property: Preprocess + Attach conserves structure for arbitrary
// snapshots — mapped bytes equal the snapshot's, every page is remote,
// nothing local, and the pool holds exactly the image once no matter how
// many attaches happen.
func TestPreprocessAttachConservationProperty(t *testing.T) {
	f := func(regionSizes []uint16, attaches8 uint8) bool {
		if len(regionSizes) == 0 {
			return true
		}
		if len(regionSizes) > 12 {
			regionSizes = regionSizes[:12]
		}
		lat := mem.DefaultLatencyModel()
		pool := mem.NewPool(mem.CXL, 0, lat)
		st := NewStore(mem.NewBlockStore(pool), mmtemplate.NewRegistry())
		snap := randomSnapshot("fn", regionSizes)
		img, err := st.Preprocess(snap, Placement{Hot: pool, HotFraction: 1})
		if err != nil {
			return false
		}
		if pool.Tracker().Used() != snap.MemBytes() {
			return false
		}
		attaches := int(attaches8%5) + 1
		tracker := mem.NewTracker("node", 0)
		var results []*Restored
		for i := 0; i < attaches; i++ {
			res, err := RestoreTemplate(img, tracker, lat, mmtemplate.DefaultCostModel(), DefaultCosts())
			if err != nil {
				return false
			}
			results = append(results, res)
			var mapped int64
			for _, as := range res.Spaces {
				mapped += int64(as.TotalPages()) * mem.PageSize
				if as.RSS() != 0 {
					return false // attach must not allocate
				}
				if as.RemoteResidentBytes() != snap.MemBytes() {
					return false
				}
			}
			if mapped != snap.MemBytes() {
				return false
			}
		}
		// Pool unchanged by any number of attaches.
		if pool.Tracker().Used() != snap.MemBytes() {
			return false
		}
		// Touching everything in one instance leaves the others remote.
		rng := rand.New(rand.NewSource(1))
		for _, as := range results[0].Spaces {
			for _, v := range as.VMAs() {
				w := 0
				if v.Prot&pagetable.Write != 0 {
					w = v.Pages()
				}
				if _, err := as.Access(rng, v, v.Pages(), w); err != nil {
					return false
				}
			}
		}
		if len(results) > 1 {
			for _, as := range results[1].Spaces {
				if as.RSS() != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
