// Package report turns any simulator run into a comparable artifact:
// the schema-stable trenv-report/v1 bundle captures a run's identity
// (seed, scale, flags, build version), its gathered Prometheus metrics,
// flight-recorder time series, trace analytics, figure result lines,
// and a flattened virtual-time-ordered span list. Every slice is sorted
// and every map marshals with sorted keys, so a fixed seed produces
// byte-identical bundles — which is what lets internal/diff attribute a
// regression instead of reporting "bytes differ".
//
// Bundles are producible from every run shape in the repo: experiments
// (experiments.BuildReport), a single node (FromPlatform), a rack
// (FromCluster), the wall-clock self-benchmark (FromSelfbench), and a
// live daemon (trenvd GET /report). Only FromSelfbench carries
// host-dependent numbers, and those live in the clearly-marked Bench
// block that internal/diff gates with tolerance bands instead of
// equality.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"repro/internal/alert"
	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/selfbench"
)

// Schema identifies the bundle layout; bump the suffix on any
// incompatible field change so trenv-diff refuses to compare artifacts
// across layouts.
const Schema = "trenv-report/v1"

// DefaultMaxPoints bounds each exported time series. Thinning is
// deterministic (fixed stride, last point always kept), so two
// same-seed bundles thin identically.
const DefaultMaxPoints = 128

// Metric is one gathered registry sample at the end of a run.
type Metric struct {
	Run     string            `json:"run,omitempty"`
	Key     string            `json:"key"`
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Counter bool              `json:"counter,omitempty"`
}

// Point is one sampled series value at a virtual instant.
type Point struct {
	TMS float64 `json:"t_ms"`
	V   float64 `json:"v"`
}

// Series is one flight-recorder time series, possibly thinned.
type Series struct {
	Run     string            `json:"run,omitempty"`
	Key     string            `json:"key"`
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Counter bool              `json:"counter,omitempty"`
	Points  []Point           `json:"points"`
}

// SpanRecord is one flattened span: enough identity to name the exact
// divergence point (trace, virtual time, phase, node) without carrying
// the whole tree. Records sort by virtual start time, so walking two
// same-seed lists in parallel finds the first divergent span.
type SpanRecord struct {
	TraceID  string  `json:"trace_id"`
	SpanID   string  `json:"span_id"`
	Name     string  `json:"name"`
	Node     string  `json:"node,omitempty"`
	Function string  `json:"function,omitempty"`
	StartUs  float64 `json:"start_us"`
	DurUs    float64 `json:"dur_us"`
	Error    string  `json:"error,omitempty"`
}

// Figure is one experiment result's rendered rows (the paper-style
// lines trenv-bench prints) — the most directly human-meaningful thing
// a diff can quote.
type Figure struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Lines []string `json:"lines"`
}

// Report is the trenv-report/v1 bundle. Field order is part of the
// schema: identity precedes every data block so line-oriented tooling
// can read seed/scale/source without a JSON parser.
type Report struct {
	Schema    string            `json:"schema"`
	Source    string            `json:"source"`
	Seed      int64             `json:"seed"`
	Scale     float64           `json:"scale"`
	GoVersion string            `json:"go_version"`
	Version   string            `json:"version"`
	Flags     map[string]string `json:"flags,omitempty"`

	// Bench carries wall-clock readings (selfbench aggregates). They are
	// host-dependent by definition, so internal/diff gates them with
	// tolerance bands and never includes them in determinism triage.
	Bench map[string]float64 `json:"bench,omitempty"`

	Figures  []Figure      `json:"figures,omitempty"`
	Metrics  []Metric      `json:"metrics,omitempty"`
	Series   []Series      `json:"series,omitempty"`
	Analysis *obs.Report   `json:"analysis,omitempty"`
	Alerts   []AlertRecord `json:"alerts,omitempty"`
	Spans    []SpanRecord  `json:"spans,omitempty"`
}

// AlertRecord is one alert rule's end-of-run state: its canonical spec
// (self-describing, so a diff can quote the rule), lifecycle state, how
// often it fired, and each captured incident with the trace IDs of the
// worst invocations inside its window.
type AlertRecord struct {
	Run       string          `json:"run,omitempty"`
	Rule      string          `json:"rule"`
	Kind      string          `json:"kind"`
	Spec      string          `json:"spec"`
	State     string          `json:"state"`
	Fired     int64           `json:"fired"`
	Incidents []AlertIncident `json:"incidents,omitempty"`
}

// AlertIncident is one flattened incident: virtual-time lifecycle plus
// trace links into the bundle's span list.
type AlertIncident struct {
	ID         string   `json:"id"`
	Detail     string   `json:"detail,omitempty"`
	PendingMS  float64  `json:"pending_ms"`
	FiringMS   float64  `json:"firing_ms"`
	ResolvedMS float64  `json:"resolved_ms,omitempty"`
	Resolved   bool     `json:"resolved"`
	TraceIDs   []string `json:"trace_ids,omitempty"`
}

// New returns an empty bundle stamped with the run's identity.
// GoVersion and Version are informational: diff never compares them, so
// a baseline generated by one toolchain gates runs from another.
func New(source string, seed int64, scale float64) *Report {
	return &Report{
		Schema:    Schema,
		Source:    source,
		Seed:      seed,
		Scale:     scale,
		GoVersion: runtime.Version(),
		Version:   obs.Version(),
	}
}

// SetFlag records one run-configuration flag ("policy", "prefetch",
// "chaos", ...) in the bundle's identity.
func (r *Report) SetFlag(k, v string) *Report {
	if r.Flags == nil {
		r.Flags = make(map[string]string)
	}
	r.Flags[k] = v
	return r
}

// AddFigure appends one experiment result's rendered rows.
func (r *Report) AddFigure(id, title string, lines []string) {
	r.Figures = append(r.Figures, Figure{ID: id, Title: title, Lines: lines})
}

// AddMetrics gathers reg's current state into the bundle under the
// given run name ("" for single-run bundles).
func (r *Report) AddMetrics(run string, reg *obs.Registry) {
	for _, s := range reg.Gather() {
		r.Metrics = append(r.Metrics, Metric{
			Run:     run,
			Key:     s.Key,
			Name:    s.Name,
			Labels:  s.Labels,
			Value:   s.Value,
			Counter: s.Counter,
		})
	}
}

// AddRecorder exports rec's series under the given run name, thinning
// each to at most maxPoints (<= 0 means DefaultMaxPoints).
func (r *Report) AddRecorder(run string, rec *obs.Recorder, maxPoints int) {
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	for _, ts := range rec.Series() {
		s := Series{Run: run, Key: ts.Key, Name: ts.Name, Labels: ts.Labels, Counter: ts.Counter}
		for _, p := range thinPoints(ts.Points(), maxPoints) {
			s.Points = append(s.Points, Point{TMS: float64(p.T.Microseconds()) / 1000, V: p.Value})
		}
		r.Series = append(r.Series, s)
	}
}

// AddRecorderSet exports every tracked run: its end-state metrics (from
// the run's registry) and its thinned series.
func (r *Report) AddRecorderSet(set *obs.RecorderSet, maxPoints int) {
	set.Each(func(run string, rec *obs.Recorder) {
		r.AddMetrics(run, rec.Registry())
		r.AddRecorder(run, rec, maxPoints)
	})
}

// thinPoints keeps every stride-th point so at most max survive, always
// including the final point — deterministic, so two same-seed bundles
// thin identically.
func thinPoints(pts []obs.Point, max int) []obs.Point {
	if len(pts) <= max {
		return pts
	}
	stride := (len(pts) + max - 1) / max
	out := make([]obs.Point, 0, max)
	for i := 0; i < len(pts); i += stride {
		out = append(out, pts[i])
	}
	if last := pts[len(pts)-1]; len(out) == 0 || out[len(out)-1] != last {
		out = append(out, last)
	}
	return out
}

// AddSpans flattens every root tree into virtual-time-ordered span
// records. The function attr is inherited from the root so child phases
// stay attributable.
func (r *Report) AddSpans(roots []*obs.Span) {
	for _, root := range roots {
		fn := ""
		if root.Attrs != nil {
			fn = root.Attrs["function"]
		}
		root.Walk(func(_ int, sp *obs.Span) {
			rec := SpanRecord{
				TraceID:  sp.TraceID,
				SpanID:   sp.SpanID,
				Name:     sp.Name,
				Function: fn,
				StartUs:  float64(sp.Start.Nanoseconds()) / 1000,
				DurUs:    float64(sp.Duration().Nanoseconds()) / 1000,
				Error:    sp.Error,
			}
			if sp.Attrs != nil {
				rec.Node = sp.Attrs["node"]
			}
			r.Spans = append(r.Spans, rec)
		})
	}
}

// AddAlerts records every rule's end-of-run state from an alert engine
// under the given run name, folding each rule's incidents (with their
// worst-invocation trace links) into its record.
func (r *Report) AddAlerts(run string, eng *alert.Engine) {
	byRule := make(map[string][]AlertIncident)
	for _, inc := range eng.Incidents() {
		ai := AlertIncident{
			ID:         inc.ID,
			Detail:     inc.Detail,
			PendingMS:  inc.PendingMS,
			FiringMS:   inc.FiringMS,
			ResolvedMS: inc.ResolvedMS,
			Resolved:   inc.Resolved,
		}
		for _, w := range inc.Worst {
			ai.TraceIDs = append(ai.TraceIDs, w.TraceID)
		}
		byRule[inc.Rule] = append(byRule[inc.Rule], ai)
	}
	for _, st := range eng.Snapshot() {
		r.Alerts = append(r.Alerts, AlertRecord{
			Run:       run,
			Rule:      st.Rule.Name,
			Kind:      string(st.Rule.Kind),
			Spec:      st.Rule.Spec(),
			State:     string(st.State),
			Fired:     st.Fired,
			Incidents: byRule[st.Rule.Name],
		})
	}
}

// Analyze attaches the trace-analytics report over the given roots.
func (r *Report) Analyze(roots []*obs.Span, topK int) {
	r.Analysis = obs.Analyze(roots, topK)
}

// Sort puts every slice into its canonical order — metrics and series
// by (run, key), spans by virtual start time, figures by ID. WriteJSON,
// the From* constructors, and diff.Compare all call it, so bundle
// serialization and span triage are deterministic regardless of
// insertion order.
func (r *Report) Sort() {
	sort.SliceStable(r.Metrics, func(i, j int) bool {
		if r.Metrics[i].Run != r.Metrics[j].Run {
			return r.Metrics[i].Run < r.Metrics[j].Run
		}
		return r.Metrics[i].Key < r.Metrics[j].Key
	})
	sort.SliceStable(r.Series, func(i, j int) bool {
		if r.Series[i].Run != r.Series[j].Run {
			return r.Series[i].Run < r.Series[j].Run
		}
		return r.Series[i].Key < r.Series[j].Key
	})
	sort.SliceStable(r.Spans, func(i, j int) bool {
		a, b := r.Spans[i], r.Spans[j]
		if a.StartUs != b.StartUs {
			return a.StartUs < b.StartUs
		}
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		return a.SpanID < b.SpanID
	})
	sort.SliceStable(r.Figures, func(i, j int) bool { return r.Figures[i].ID < r.Figures[j].ID })
	sort.SliceStable(r.Alerts, func(i, j int) bool {
		if r.Alerts[i].Run != r.Alerts[j].Run {
			return r.Alerts[i].Run < r.Alerts[j].Run
		}
		return r.Alerts[i].Rule < r.Alerts[j].Rule
	})
}

// WriteJSON writes the bundle with stable indentation and field order.
// Single-space indent keeps committed baselines line-oriented (one
// field per line, greppable) without doubling their size.
func (r *Report) WriteJSON(w io.Writer) error {
	r.Sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteFile writes the bundle to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Decode parses a bundle, refusing anything that does not carry the
// trenv-report/v1 schema.
func Decode(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("report: schema %q is not %q", r.Schema, Schema)
	}
	return &r, nil
}

// ReadFile parses the bundle at path.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// FromPlatform bundles a finished single-node run: identity from the
// platform's config, end-state metrics from a fresh registry, spans and
// analytics from the attached tracer (skipped when tracing was off).
func FromPlatform(source string, scale float64, pl *faas.Platform) *Report {
	r := New(source, pl.Seed(), scale)
	r.SetFlag("policy", string(pl.Policy()))
	if n := pl.NodeName(); n != "" {
		r.SetFlag("node", n)
	}
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	r.AddMetrics("", reg)
	if tr := pl.Tracer(); tr != nil {
		roots := tr.Spans()
		r.AddSpans(roots)
		r.Analyze(roots, 0)
	}
	if ae := pl.Alerts(); ae != nil {
		r.AddAlerts("", ae)
	}
	r.Sort()
	return r
}

// FromCluster bundles a finished rack run: fleet metrics (per-node and
// rack aggregates) plus spans and analytics from tracer (nil skips).
func FromCluster(source string, scale float64, c *cluster.Cluster, tracer *obs.Tracer) *Report {
	r := New(source, c.Seed(), scale)
	r.SetFlag("nodes", fmt.Sprintf("%d", len(c.Nodes())))
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	r.AddMetrics("", reg)
	if tracer != nil {
		roots := tracer.Spans()
		r.AddSpans(roots)
		r.Analyze(roots, 0)
	}
	if ae := c.Alerts(); ae != nil {
		r.AddAlerts("", ae)
	}
	r.Sort()
	return r
}

// FromShardedFleet bundles a finished sharded-fleet run: fleet metrics
// (per-rack and aggregate, including the shard coordinator's window and
// message counters) plus the deterministically merged spans from every
// rack's tracer. The bundle deliberately carries no worker-count flag:
// workers are physical parallelism only, and the same seed must produce
// a byte-identical bundle at any worker count.
func FromShardedFleet(source string, scale float64, f *cluster.ShardedFleet) *Report {
	r := New(source, f.Seed(), scale)
	r.SetFlag("racks", fmt.Sprintf("%d", len(f.Racks())))
	r.SetFlag("nodes", fmt.Sprintf("%d", len(f.Racks())*len(f.Racks()[0].Nodes())))
	reg := obs.NewRegistry()
	f.RegisterMetrics(reg)
	r.AddMetrics("", reg)
	if roots := f.Spans(); len(roots) > 0 {
		r.AddSpans(roots)
		r.Analyze(roots, 0)
	}
	r.Sort()
	return r
}

// FromSelfbench converts a wall-clock self-benchmark artifact: the
// host-dependent aggregate lands in Bench (tolerance-gated, never
// triaged) and each run's deterministic work counts become metrics
// (equality-gated — count drift means the workload changed, which is a
// different failure than a slow host).
func FromSelfbench(sb *selfbench.Report) *Report {
	r := New("selfbench", sb.Seed, sb.Scale)
	r.Bench = map[string]float64{
		"events_per_sec":      sb.Aggregate.EventsPerSec,
		"invocations_per_sec": sb.Aggregate.InvocationsPerSec,
		"spans_per_sec":       sb.Aggregate.SpansPerSec,
		"allocs_per_event":    sb.Aggregate.AllocsPerEvent,
		"bytes_per_event":     sb.Aggregate.BytesPerEvent,
		"wall_ms_per_sim_sec": sb.Aggregate.WallMSPerSimSec,
		"obs_overhead_pct":    sb.Aggregate.ObsOverheadPct,
	}
	for _, run := range sb.Runs {
		for key, v := range map[string]float64{
			"events":      float64(run.Events),
			"invocations": float64(run.Invocations),
			"spans":       float64(run.Spans),
			"sim_seconds": run.SimSeconds,
		} {
			r.Metrics = append(r.Metrics, Metric{Run: run.Name, Key: key, Name: key, Value: v})
		}
	}
	r.Sort()
	return r
}
