package report

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/alert"
	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/workload"
)

// runAlertedNode drives the runNode workload with a flight recorder and
// an always-firing alert rule attached, so the bundle embeds alerts.
func runAlertedNode(t *testing.T, seed int64) *faas.Platform {
	t.Helper()
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = seed
	cfg.Node = "n0"
	cfg.Tracer = obs.NewTracer(0)
	pl := faas.New(cfg)
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	pl.AttachRecorder(obs.NewRecorder(reg, 0), 0)
	pl.AttachAlerts(alert.New([]alert.Rule{
		{Name: "any-invoke", Kind: alert.KindRate, Series: "trenv_invocations_total", Op: alert.OpGT, Value: 0.1},
		{Name: "ghost", Kind: alert.KindAbsence, Series: "no_such_series", Window: time.Second},
	}))

	profs := workload.Table4()[:3]
	var tr workload.Trace
	for i, p := range profs {
		if err := pl.Register(p); err != nil {
			t.Fatalf("register %s: %v", p.Name, err)
		}
		for j := 0; j < 8; j++ {
			tr = append(tr, workload.Invocation{
				At:       time.Duration(i*20+j*150) * time.Millisecond,
				Function: p.Name,
			})
		}
	}
	pl.RunTrace(tr)
	return pl
}

func TestFromPlatformEmbedsAlerts(t *testing.T) {
	r := FromPlatform("test", 0.5, runAlertedNode(t, 7))
	if len(r.Alerts) != 2 {
		t.Fatalf("alerts = %+v, want both rules recorded", r.Alerts)
	}
	// Sort() orders by (run, rule): any-invoke before ghost.
	if r.Alerts[0].Rule != "any-invoke" || r.Alerts[1].Rule != "ghost" {
		t.Fatalf("alert order = %s, %s", r.Alerts[0].Rule, r.Alerts[1].Rule)
	}
	ghost := r.Alerts[1]
	if ghost.State != "firing" || ghost.Fired != 1 || ghost.Spec == "" {
		t.Fatalf("ghost record = %+v", ghost)
	}
	if len(ghost.Incidents) != 1 {
		t.Fatalf("ghost incidents = %+v", ghost.Incidents)
	}
	// The firing rule with tracer coverage must link resolvable traces.
	inv := r.Alerts[0]
	if inv.Fired == 0 || len(inv.Incidents) == 0 {
		t.Fatalf("any-invoke record = %+v", inv)
	}
	spanTraces := map[string]bool{}
	for _, sp := range r.Spans {
		spanTraces[sp.TraceID] = true
	}
	linked := 0
	for _, id := range inv.Incidents[0].TraceIDs {
		if spanTraces[id] {
			linked++
		}
	}
	if linked == 0 {
		t.Fatalf("incident trace IDs %v not resolvable in the bundle's span list", inv.Incidents[0].TraceIDs)
	}
}

func TestAlertsSurviveBundleRoundTrip(t *testing.T) {
	orig := FromPlatform("test", 1, runAlertedNode(t, 3))
	var a bytes.Buffer
	if err := orig.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(a.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := back.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("alerts changed across the bundle round trip")
	}
}

func TestAlertedBundlesByteIdenticalPerSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := FromPlatform("test", 1, runAlertedNode(t, 3)).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := FromPlatform("test", 1, runAlertedNode(t, 3)).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed alerted bundles are not byte-identical")
	}
}
