package report

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/workload"
)

// shardedBundle runs a fixed fleet workload at the given worker count
// and returns the serialized report bundle.
func shardedBundle(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = 1
	f, err := cluster.NewShardedFleet(cluster.ShardedConfig{
		Racks:        4,
		NodesPerRack: 2,
		TraceCap:     4096,
		Workers:      workers,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fns []string
	for _, p := range workload.Table4() {
		if err := f.Register(p); err != nil {
			t.Fatal(err)
		}
		fns = append(fns, p.Name)
	}
	az := workload.AzureConfig(fns)
	az.Duration = time.Minute
	f.RunTrace(workload.Industrial(rand.New(rand.NewSource(2)), az))
	r := FromShardedFleet("sharded-test", 1, f)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A fleet report bundle must be byte-identical at any worker count: the
// worker count is physical parallelism only and must not leak into the
// bundle (no flag, no reordering, no count drift).
func TestFromShardedFleetBundleInvariantOfWorkers(t *testing.T) {
	want := shardedBundle(t, 1)
	if !bytes.Contains(want, []byte("trenv_shard_windows_total")) {
		t.Fatal("bundle missing shard coordinator metrics")
	}
	if bytes.Contains(want, []byte("workers")) {
		t.Fatal("worker count leaked into the bundle")
	}
	for _, workers := range []int{2, 4} {
		got := shardedBundle(t, workers)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: bundle differs from workers=1 (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}
