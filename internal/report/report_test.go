package report

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/selfbench"
	"repro/internal/workload"
)

// runNode drives a small seeded workload on a traced TrEnv-CXL node and
// returns the finished platform.
func runNode(t *testing.T, seed int64) *faas.Platform {
	t.Helper()
	cfg := faas.DefaultConfig(faas.PolicyTrEnvCXL)
	cfg.Seed = seed
	cfg.Node = "n0"
	cfg.Tracer = obs.NewTracer(0)
	pl := faas.New(cfg)
	profs := workload.Table4()[:3]
	var tr workload.Trace
	for i, p := range profs {
		if err := pl.Register(p); err != nil {
			t.Fatalf("register %s: %v", p.Name, err)
		}
		for j := 0; j < 8; j++ {
			tr = append(tr, workload.Invocation{
				At:       time.Duration(i*20+j*150) * time.Millisecond,
				Function: p.Name,
			})
		}
	}
	pl.RunTrace(tr)
	return pl
}

func TestFromPlatformBundlesEverything(t *testing.T) {
	r := FromPlatform("test", 0.5, runNode(t, 7))
	if r.Schema != Schema {
		t.Fatalf("schema = %q, want %q", r.Schema, Schema)
	}
	if r.Seed != 7 || r.Scale != 0.5 || r.Source != "test" {
		t.Fatalf("identity = %q/%d/%g", r.Source, r.Seed, r.Scale)
	}
	if r.Flags["policy"] != string(faas.PolicyTrEnvCXL) || r.Flags["node"] != "n0" {
		t.Fatalf("flags = %v", r.Flags)
	}
	if len(r.Metrics) == 0 {
		t.Fatal("no metrics gathered")
	}
	if len(r.Spans) == 0 {
		t.Fatal("no spans flattened")
	}
	if r.Analysis == nil || r.Analysis.Invocations != 24 {
		t.Fatalf("analysis = %+v", r.Analysis)
	}
	for i := 1; i < len(r.Spans); i++ {
		if r.Spans[i].StartUs < r.Spans[i-1].StartUs {
			t.Fatalf("spans out of virtual-time order at %d", i)
		}
	}
}

func TestSameSeedBundlesByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	if err := FromPlatform("test", 1, runNode(t, 3)).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := FromPlatform("test", 1, runNode(t, 3)).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed bundles are not byte-identical")
	}
	var c bytes.Buffer
	if err := FromPlatform("test", 1, runNode(t, 4)).WriteJSON(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical bundles")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundle.json")
	orig := FromPlatform("test", 1, runNode(t, 5))
	if err := orig.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := orig.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("round trip changed the bundle")
	}
}

func TestDecodeRefusesWrongSchema(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"schema":"trenv-report/v999"}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted (err=%v)", err)
	}
}

func TestThinPointsDeterministicAndBounded(t *testing.T) {
	var pts []obs.Point
	for i := 0; i < 1000; i++ {
		pts = append(pts, obs.Point{T: time.Duration(i) * time.Millisecond, Value: float64(i)})
	}
	thin := thinPoints(pts, 24)
	if len(thin) > 25 { // stride thinning may add the final point
		t.Fatalf("thinned to %d points, want <= 25", len(thin))
	}
	if thin[len(thin)-1] != pts[len(pts)-1] {
		t.Fatal("thinning dropped the final point")
	}
	again := thinPoints(pts, 24)
	if len(again) != len(thin) {
		t.Fatal("thinning is not deterministic")
	}
	for i := range thin {
		if thin[i] != again[i] {
			t.Fatal("thinning is not deterministic")
		}
	}
	short := thinPoints(pts[:10], 24)
	if len(short) != 10 {
		t.Fatalf("short series thinned from 10 to %d", len(short))
	}
}

func TestFromSelfbenchSplitsBenchAndCounts(t *testing.T) {
	sb := selfbench.RunSuite(selfbench.Options{Seed: 11, Scale: 0.01})
	r := FromSelfbench(sb)
	if r.Source != "selfbench" || r.Seed != 11 || r.Scale != 0.01 {
		t.Fatalf("identity = %q/%d/%g", r.Source, r.Seed, r.Scale)
	}
	for _, key := range []string{"events_per_sec", "invocations_per_sec", "allocs_per_event"} {
		if _, ok := r.Bench[key]; !ok {
			t.Fatalf("bench block missing %s", key)
		}
	}
	// Every run contributes its deterministic work counts as metrics.
	runs := map[string]int{}
	for _, m := range r.Metrics {
		runs[m.Run]++
	}
	if len(runs) != len(sb.Runs) {
		t.Fatalf("metrics cover %d runs, want %d", len(runs), len(sb.Runs))
	}
	for run, n := range runs {
		if n != 4 {
			t.Fatalf("run %s has %d count metrics, want 4", run, n)
		}
	}
}
