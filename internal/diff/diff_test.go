package diff

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/report"
)

// mkReport builds a small but fully populated bundle: metrics, a
// series, figure rows, analysis, and a span list.
func mkReport() *report.Report {
	r := report.New("test", 1, 0.5)
	r.SetFlag("policy", "trenv-cxl")
	r.Metrics = []report.Metric{
		{Key: "trenv_errors_total", Name: "trenv_errors_total", Value: 2, Counter: true},
		{Key: "trenv_warm_starts_total", Name: "trenv_warm_starts_total", Value: 40, Counter: true},
		{Key: "trenv_peak_memory_bytes", Name: "trenv_peak_memory_bytes", Value: 1 << 20},
	}
	r.Series = []report.Series{{
		Key:  "trenv_active",
		Name: "trenv_active",
		Points: []report.Point{
			{TMS: 0, V: 0}, {TMS: 100, V: 3}, {TMS: 200, V: 1},
		},
	}}
	r.AddFigure("fig17", "E2E latency", []string{"JS 120ms", "PR 600ms"})
	r.Analysis = &obs.Report{
		Invocations: 10,
		Slowest: []obs.SlowInvocation{{
			TraceID: "t1", Function: "JS", DurUs: 9000,
			CriticalPath: []obs.PathStep{
				{Name: "invoke/JS", SelfUs: 100},
				{Name: "startup", SelfUs: 5000},
				{Name: "exec", SelfUs: 3900},
			},
		}},
		Attribution: []obs.PhaseAttribution{{
			Function: "JS", Invocations: 10,
			Phases: []obs.PhaseQuantiles{
				{Phase: "startup", P50Us: 4000, P99Us: 5000},
				{Phase: "exec", P50Us: 3000, P99Us: 3900},
			},
		}},
	}
	r.Spans = []report.SpanRecord{
		{TraceID: "t1", SpanID: "s1", Name: "invoke/JS", Node: "n0", StartUs: 0, DurUs: 9000},
		{TraceID: "t1", SpanID: "s2", Name: "startup", Node: "n0", StartUs: 10, DurUs: 5000},
		{TraceID: "t2", SpanID: "s3", Name: "invoke/JS", Node: "n0", StartUs: 500, DurUs: 4000},
		{TraceID: "t2", SpanID: "s4", Name: "exec", Node: "n0", StartUs: 600, DurUs: 3000},
	}
	return r
}

// clone deep-copies a bundle through its JSON form.
func clone(t *testing.T, r *report.Report) *report.Report {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var out report.Report
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestIdenticalReportsZeroFindings(t *testing.T) {
	base := mkReport()
	res, err := Compare(base, clone(t, base), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("identical pair produced findings: %+v", res.Findings)
	}
	if res.Regressed() {
		t.Fatal("identical pair regressed")
	}
	if res.Compared == 0 || res.Compared != res.Unchanged {
		t.Fatalf("compared=%d unchanged=%d", res.Compared, res.Unchanged)
	}
}

func TestEmptyReportsCompareClean(t *testing.T) {
	a := report.New("empty", 1, 1)
	b := report.New("empty", 1, 1)
	res, err := Compare(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 || res.Regressed() {
		t.Fatalf("empty pair not clean: %+v", res.Findings)
	}
}

func TestMismatchRefusals(t *testing.T) {
	base := mkReport()
	cases := []struct {
		field string
		mut   func(r *report.Report)
	}{
		{"schema", func(r *report.Report) { r.Schema = "trenv-report/v999" }},
		{"source", func(r *report.Report) { r.Source = "other" }},
		{"seed", func(r *report.Report) { r.Seed++ }},
		{"scale", func(r *report.Report) { r.Scale *= 2 }},
	}
	for _, tc := range cases {
		fresh := clone(t, base)
		tc.mut(fresh)
		_, err := Compare(base, fresh, Options{})
		var mismatch *MismatchError
		if !errors.As(err, &mismatch) {
			t.Fatalf("%s mismatch not refused (err=%v)", tc.field, err)
		}
		if mismatch.Field != tc.field {
			t.Fatalf("refused on %q, want %q", mismatch.Field, tc.field)
		}
	}
}

func TestFirstDivergentSpanPinpointed(t *testing.T) {
	base := mkReport()
	fresh := clone(t, base)
	// Perturb two spans; triage must name the earliest.
	fresh.Spans[1].DurUs += 7
	fresh.Spans[3].Node = "n1"
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Determinism
	if d == nil {
		t.Fatal("no divergence detected")
	}
	if d.Index != 1 || d.Field != "dur_us" {
		t.Fatalf("divergence = %+v, want index 1 field dur_us", d)
	}
	if d.TraceID != "t1" || d.Phase != "startup" || d.Node != "n0" || d.VirtualUs != 10 {
		t.Fatalf("divergence identity = %+v", d)
	}
	if !res.Regressed() {
		t.Fatal("divergent pair not regressed")
	}
	if !strings.Contains(d.String(), "index 1") || !strings.Contains(d.String(), "trace t1") {
		t.Fatalf("diagnosis %q lacks identity", d.String())
	}
}

func TestSpanCountDivergence(t *testing.T) {
	base := mkReport()
	fresh := clone(t, base)
	fresh.Spans = fresh.Spans[:len(fresh.Spans)-1]
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Determinism == nil || res.Determinism.Field != "missing span" {
		t.Fatalf("determinism = %+v, want missing span", res.Determinism)
	}
	if res.Determinism.Index != 3 {
		t.Fatalf("index = %d, want 3", res.Determinism.Index)
	}
}

func TestMetricToleranceAndDirection(t *testing.T) {
	base := mkReport()
	fresh := clone(t, base)
	fresh.Metrics[0].Value = 3  // errors 2 -> 3: higher is worse
	fresh.Metrics[1].Value = 44 // warm starts 40 -> 44: higher is better

	// Inside a 60% band nothing moves.
	res, err := Compare(base, clone(t, fresh), Options{RelTol: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if f.Kind == "metric" {
			t.Fatalf("in-tolerance delta reported: %+v", f)
		}
	}

	// Exact comparison classifies by direction.
	res, err = Compare(base, clone(t, fresh), Options{})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]Verdict{}
	for _, f := range res.Findings {
		if f.Kind == "metric" {
			verdicts[f.Key] = f.Verdict
		}
	}
	if verdicts["trenv_errors_total"] != VerdictRegressed {
		t.Fatalf("error growth = %v, want regressed", verdicts["trenv_errors_total"])
	}
	if verdicts["trenv_warm_starts_total"] != VerdictImproved {
		t.Fatalf("warm-start growth = %v, want improved", verdicts["trenv_warm_starts_total"])
	}

	// Missing and new metrics are named.
	fresh = clone(t, base)
	fresh.Metrics = append(fresh.Metrics[:1], report.Metric{Key: "trenv_new_total", Value: 1})
	res, err = Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[Verdict]bool{}
	for _, f := range res.Findings {
		if f.Kind == "metric" {
			got[f.Verdict] = true
		}
	}
	if !got[VerdictMissing] || !got[VerdictNew] {
		t.Fatalf("verdicts = %v, want missing and new", got)
	}
}

func TestBenchGates(t *testing.T) {
	base := report.New("selfbench", 1, 0.1)
	base.Bench = map[string]float64{
		"events_per_sec":      1e6,
		"invocations_per_sec": 1e4,
		"allocs_per_event":    10,
	}
	fresh := clone(t, base)
	fresh.Bench["events_per_sec"] = 4e5 // -60%, beyond the 30% floor
	fresh.Bench["allocs_per_event"] = 15
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	failed := map[string]bool{}
	for _, g := range res.Gates {
		if !g.Pass {
			failed[g.Name] = true
		}
	}
	if !failed["events_per_sec"] || !failed["allocs_per_event"] || failed["invocations_per_sec"] {
		t.Fatalf("failed gates = %v", failed)
	}
	if !res.Regressed() {
		t.Fatal("failed gates did not regress the result")
	}

	// A 10% dip passes the default band but fails a 5% override.
	fresh = clone(t, base)
	fresh.Bench["events_per_sec"] = 9e5
	if res, _ = Compare(base, fresh, Options{}); res.Regressed() {
		t.Fatal("10% dip failed the default 30% band")
	}
	if res, _ = Compare(base, fresh, Options{EventsTol: 0.05}); !res.Regressed() {
		t.Fatal("10% dip passed a 5% band")
	}
}

func TestFigureAndSeriesDiffs(t *testing.T) {
	base := mkReport()
	fresh := clone(t, base)
	fresh.Figures[0].Lines[1] = "PR 700ms"
	fresh.Series[0].Points[2].V = 2
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var figure, series bool
	for _, f := range res.Findings {
		switch f.Kind {
		case "figure":
			figure = true
			if !strings.Contains(f.Detail, "PR 600ms") || !strings.Contains(f.Detail, "PR 700ms") {
				t.Fatalf("figure detail %q does not quote both rows", f.Detail)
			}
			if f.Key != "figure/fig17/line1" {
				t.Fatalf("figure key = %q", f.Key)
			}
		case "series":
			series = true
			if !strings.Contains(f.Detail, "t=200.0ms") {
				t.Fatalf("series detail %q does not name the divergence instant", f.Detail)
			}
		}
	}
	if !figure || !series {
		t.Fatalf("figure=%v series=%v, want both", figure, series)
	}
}

func TestAttributionAndCriticalPathDiffs(t *testing.T) {
	base := mkReport()
	fresh := clone(t, base)
	fresh.Analysis.Attribution[0].Phases[0].P99Us = 8000 // startup p99 +60%
	fresh.Analysis.Slowest[0].CriticalPath = []obs.PathStep{
		{Name: "invoke/JS", SelfUs: 100},
		{Name: "pool-fetch", SelfUs: 6000}, // entered
		{Name: "exec", SelfUs: 3900},       // startup left
	}
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]Verdict{}
	for _, f := range res.Findings {
		keys[f.Key] = f.Verdict
	}
	if keys["attr/JS/startup/p99_us"] != VerdictRegressed {
		t.Fatalf("attribution finding = %v", keys)
	}
	if keys["critical-path/pool-fetch"] != VerdictRegressed {
		t.Fatalf("entered phase = %v, want regressed", keys["critical-path/pool-fetch"])
	}
	if keys["critical-path/startup"] != VerdictImproved {
		t.Fatalf("left phase = %v, want improved", keys["critical-path/startup"])
	}
}

func TestFindingsRankedMostSevereFirst(t *testing.T) {
	base := mkReport()
	fresh := clone(t, base)
	fresh.Metrics[0].Value = 3                        // regressed
	fresh.Metrics[1].Value = 44                       // improved
	fresh.Flags = map[string]string{"policy": "criu"} // changed
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) < 3 {
		t.Fatalf("want >= 3 findings, got %+v", res.Findings)
	}
	last := -1
	for _, f := range res.Findings {
		r := f.Verdict.rank()
		if r < last {
			t.Fatalf("findings not ranked: %+v", res.Findings)
		}
		last = r
	}
	if res.Findings[0].Verdict != VerdictRegressed {
		t.Fatalf("first finding = %v, want regressed", res.Findings[0].Verdict)
	}
}

func TestDiffOutputByteIdentical(t *testing.T) {
	base := mkReport()
	fresh := clone(t, base)
	fresh.Metrics[0].Value = 3
	fresh.Spans[2].DurUs += 1
	render := func() (string, string) {
		res, err := Compare(clone(t, base), clone(t, fresh), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var txt, js bytes.Buffer
		if err := res.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 {
		t.Fatalf("text output differs across runs:\n%s\n---\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Fatal("JSON output differs across runs")
	}
}
