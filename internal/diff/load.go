package diff

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/selfbench"
)

// LoadFile reads one comparable artifact, sniffing its schema: a
// trenv-report/v1 bundle loads as-is; a trenv-selfbench/v1 wall-clock
// artifact is converted into a bundle whose Schema stays
// trenv-selfbench/v1, so the identity check refuses to gate a selfbench
// artifact against a run report (and vice versa). Anything else —
// unknown schema, unreadable file, malformed JSON — is an error.
func LoadFile(path string) (*report.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("diff: %w", err)
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("diff: %s: %w", path, err)
	}
	switch head.Schema {
	case report.Schema:
		var r report.Report
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("diff: %s: %w", path, err)
		}
		return &r, nil
	case selfbench.Schema:
		var sb selfbench.Report
		if err := json.Unmarshal(data, &sb); err != nil {
			return nil, fmt.Errorf("diff: %s: %w", path, err)
		}
		r := report.FromSelfbench(&sb)
		r.Schema = selfbench.Schema
		return r, nil
	default:
		return nil, fmt.Errorf("diff: %s: unsupported schema %q", path, head.Schema)
	}
}

// CompareFiles loads both artifacts and diffs fresh against base.
func CompareFiles(basePath, freshPath string, o Options) (*Result, error) {
	base, err := LoadFile(basePath)
	if err != nil {
		return nil, err
	}
	fresh, err := LoadFile(freshPath)
	if err != nil {
		return nil, err
	}
	return Compare(base, fresh, o)
}
