package diff

import (
	"fmt"

	"repro/internal/report"
)

// Determinism triage: every accepted pair shares a seed, so when both
// bundles carry span lists the runs were supposed to be byte-identical.
// Instead of "bytes differ", walk the virtual-time-ordered lists in
// parallel and name the first span where they disagree.

// triage sets r.Determinism (and a matching finding) when the span
// lists diverge. Reports without spans (lean baselines) skip triage —
// the metric and figure diffs still gate them.
func (r *Result) triage(a, b *report.Report) {
	if len(a.Spans) == 0 && len(b.Spans) == 0 {
		return
	}
	d := firstSpanDivergence(a.Spans, b.Spans)
	if d == nil {
		r.Compared++
		r.Unchanged++
		return
	}
	r.Compared++
	r.Determinism = d
	r.Findings = append(r.Findings, Finding{
		Kind:    "determinism",
		Verdict: VerdictRegressed,
		Key:     fmt.Sprintf("span/%d", d.Index),
		Detail:  d.String(),
	})
}

// spanFields compares one record pair field by field, most-diagnostic
// first, and names the first disagreement.
var spanFields = []struct {
	name string
	get  func(report.SpanRecord) string
}{
	{"start_us", func(s report.SpanRecord) string { return fmt.Sprintf("%.3f", s.StartUs) }},
	{"phase", func(s report.SpanRecord) string { return s.Name }},
	{"dur_us", func(s report.SpanRecord) string { return fmt.Sprintf("%.3f", s.DurUs) }},
	{"node", func(s report.SpanRecord) string { return s.Node }},
	{"error", func(s report.SpanRecord) string { return s.Error }},
	{"trace_id", func(s report.SpanRecord) string { return s.TraceID }},
	{"span_id", func(s report.SpanRecord) string { return s.SpanID }},
	{"function", func(s report.SpanRecord) string { return s.Function }},
}

// firstSpanDivergence returns the earliest disagreement between two
// virtual-time-ordered span lists, or nil when they match exactly.
func firstSpanDivergence(a, b []report.SpanRecord) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		for _, f := range spanFields {
			av, bv := f.get(a[i]), f.get(b[i])
			if av == bv {
				continue
			}
			return &Divergence{
				Index:     i,
				Field:     f.name,
				Base:      av,
				New:       bv,
				TraceID:   a[i].TraceID,
				SpanID:    a[i].SpanID,
				Phase:     a[i].Name,
				Node:      a[i].Node,
				VirtualUs: a[i].StartUs,
			}
		}
	}
	switch {
	case len(a) > len(b):
		s := a[n]
		return &Divergence{
			Index: n, Field: "missing span", Base: "present", New: "absent",
			TraceID: s.TraceID, SpanID: s.SpanID, Phase: s.Name, Node: s.Node, VirtualUs: s.StartUs,
		}
	case len(b) > len(a):
		s := b[n]
		return &Divergence{
			Index: n, Field: "extra span", Base: "absent", New: "present",
			TraceID: s.TraceID, SpanID: s.SpanID, Phase: s.Name, Node: s.Node, VirtualUs: s.StartUs,
		}
	}
	return nil
}
