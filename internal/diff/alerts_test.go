package diff

import (
	"strings"
	"testing"

	"repro/internal/report"
)

func alertRecord(rule, state string, fired int64) report.AlertRecord {
	ar := report.AlertRecord{
		Rule:  rule,
		Kind:  "rate",
		Spec:  "rate:" + rule + ":trenv_errors_total:>0.5",
		State: state,
		Fired: fired,
	}
	if fired > 0 {
		ar.Incidents = []report.AlertIncident{{
			ID: "inc1", Detail: "trenv_errors_total = 2/s over 5s > 0.5/s",
			PendingMS: 1000, FiringMS: 3000, TraceIDs: []string{"t1"},
		}}
	}
	return ar
}

func findAlert(t *testing.T, res *Result, key string) Finding {
	t.Helper()
	for _, f := range res.Findings {
		if f.Kind == "alert" && f.Key == key {
			return f
		}
	}
	t.Fatalf("no alert finding %s in %+v", key, res.Findings)
	return Finding{}
}

func TestAlertsUnchanged(t *testing.T) {
	base := mkReport()
	base.Alerts = []report.AlertRecord{alertRecord("errs", "inactive", 1)}
	res, err := Compare(base, clone(t, base), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if f.Kind == "alert" {
			t.Fatalf("identical alerts produced finding %+v", f)
		}
	}
}

func TestAlertNewlyFiringRegresses(t *testing.T) {
	base := mkReport()
	base.Alerts = []report.AlertRecord{alertRecord("errs", "inactive", 0)}
	fresh := clone(t, base)
	fresh.Alerts = []report.AlertRecord{alertRecord("errs", "firing", 1)}
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := findAlert(t, res, "alert/errs")
	if f.Verdict != VerdictRegressed {
		t.Fatalf("verdict = %s, want regressed", f.Verdict)
	}
	if !strings.Contains(f.Detail, "now firing") || !strings.Contains(f.Detail, "trace t1") {
		t.Fatalf("detail = %q, want firing note with trace link", f.Detail)
	}
	if !res.Regressed() {
		t.Fatal("newly firing alert must fail the regression gate")
	}
}

func TestAlertResolvedImproves(t *testing.T) {
	base := mkReport()
	base.Alerts = []report.AlertRecord{alertRecord("errs", "firing", 1)}
	fresh := clone(t, base)
	fresh.Alerts = []report.AlertRecord{alertRecord("errs", "inactive", 1)}
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := findAlert(t, res, "alert/errs"); f.Verdict != VerdictImproved {
		t.Fatalf("verdict = %s, want improved", f.Verdict)
	}
}

func TestAlertFiredCountDelta(t *testing.T) {
	base := mkReport()
	base.Alerts = []report.AlertRecord{alertRecord("errs", "inactive", 1)}
	fresh := clone(t, base)
	fresh.Alerts = []report.AlertRecord{alertRecord("errs", "inactive", 3)}
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := findAlert(t, res, "alert/errs")
	if f.Verdict != VerdictRegressed || f.Base != 1 || f.New != 3 {
		t.Fatalf("finding = %+v, want regressed 1 -> 3", f)
	}
}

func TestAlertRuleAddedAndRemoved(t *testing.T) {
	base := mkReport()
	base.Alerts = []report.AlertRecord{alertRecord("old", "inactive", 0)}
	fresh := clone(t, base)
	fresh.Alerts = []report.AlertRecord{
		alertRecord("quiet", "inactive", 0),
		alertRecord("loud", "firing", 2),
	}
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := findAlert(t, res, "alert/old"); f.Verdict != VerdictMissing {
		t.Fatalf("removed rule verdict = %s, want missing", f.Verdict)
	}
	if f := findAlert(t, res, "alert/quiet"); f.Verdict != VerdictNew {
		t.Fatalf("new quiet rule verdict = %s, want new", f.Verdict)
	}
	f := findAlert(t, res, "alert/loud")
	if f.Verdict != VerdictRegressed {
		t.Fatalf("new firing rule verdict = %s, want regressed", f.Verdict)
	}
	if !strings.Contains(f.Detail, "new rule fired") {
		t.Fatalf("detail = %q", f.Detail)
	}
}

func TestAlertKeyIncludesRun(t *testing.T) {
	base := mkReport()
	ar := alertRecord("errs", "inactive", 0)
	ar.Run = "fig17/trenv-cxl"
	base.Alerts = []report.AlertRecord{ar}
	fresh := clone(t, base)
	fresh.Alerts[0].State = "firing"
	fresh.Alerts[0].Fired = 1
	res, err := Compare(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := findAlert(t, res, "alert/fig17/trenv-cxl/errs"); f.Verdict != VerdictRegressed {
		t.Fatalf("verdict = %s", f.Verdict)
	}
}
