package diff

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes the comparison with stable indentation and field
// order; the findings are already ranked, so the same pair of reports
// renders byte-identically on every run.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteText writes the human summary: identity line, one line per
// selfbench gate (pass or fail, so the gated figures always show),
// the ranked findings, the determinism diagnosis, and a final verdict
// line. Output is deterministic for a given Result.
func (r *Result) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("trenv-diff: %s seed %d scale %g\n", r.Source, r.Seed, r.Scale)
	for _, g := range r.Gates {
		status := "ok  "
		if !g.Pass {
			status = "FAIL"
		}
		switch g.Mode {
		case "info":
			p("%s %-22s %.6g vs baseline %.6g (%+.1f%%)\n",
				status, g.Name, g.New, g.Base, g.DeltaPct)
		case "ceil":
			p("%s %-22s %.6g vs baseline %.6g (%+.1f%%, ceil %.6g)\n",
				status, g.Name, g.New, g.Base, g.DeltaPct, g.Bound)
		default:
			p("%s %-22s %.6g vs baseline %.6g (%+.1f%%, floor %.6g)\n",
				status, g.Name, g.New, g.Base, g.DeltaPct, g.Bound)
		}
	}
	if len(r.Findings) > 0 {
		p("findings (%d):\n", len(r.Findings))
	}
	for _, f := range r.Findings {
		p("%s", fmt.Sprintf(" %-9s %-13s %s", f.Verdict, f.Kind, f.Key))
		if f.Base != 0 || f.New != 0 {
			p(": %.6g -> %.6g", f.Base, f.New)
			if f.DeltaPct != 0 {
				p(" (%+.1f%%)", f.DeltaPct)
			}
		}
		if f.Detail != "" {
			p(" -- %s", f.Detail)
		}
		p("\n")
	}
	if r.Determinism != nil {
		p("determinism: %s\n", r.Determinism.String())
	}
	if r.Regressed() {
		p("trenv-diff: REGRESSED (%d compared, %d unchanged, %d findings)\n",
			r.Compared, r.Unchanged, len(r.Findings))
	} else {
		p("trenv-diff: ok (%d compared, %d unchanged, %d findings)\n",
			r.Compared, r.Unchanged, len(r.Findings))
	}
	return err
}
