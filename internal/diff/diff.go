// Package diff compares two trenv run reports and attributes the delta:
// per-metric deltas inside configurable tolerance bands, per-function
// per-phase latency-attribution deltas, critical-path structural diffs,
// time-series divergence detection, figure-row diffs, and — because
// every accepted pair shares a seed — determinism triage that walks the
// span lists in virtual-time order and names the first divergent span
// (trace ID, virtual time, phase, node) instead of "bytes differ".
//
// The output is a ranked verdict list (regressed / missing / new /
// changed / improved) with deterministic machine-readable (JSON) and
// human-readable (text) renderings: diffing the same pair twice
// produces byte-identical output. Artifacts that disagree on schema,
// source, seed, or scale are refused outright with *MismatchError —
// comparing different workloads answers nothing.
//
// Selfbench artifacts (trenv-selfbench/v1) get the regression-gate
// treatment scripts/bench-compare.sh used to hand-roll in awk:
// events_per_sec and invocations_per_sec are floors, allocs_per_event
// is a ceiling, and the deterministic per-run work counts are
// equality-gated (count drift means the workload changed, which is a
// different failure than a slow host).
package diff

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/report"
	"repro/internal/selfbench"
)

// ResultSchema identifies the diff output layout.
const ResultSchema = "trenv-diff/v1"

// Options tune the comparison.
type Options struct {
	// RelTol is the fractional band on metric/phase/series deltas: a
	// value within RelTol of the baseline is unchanged. Zero (the
	// default) demands equality — right for deterministic artifacts.
	RelTol float64
	// AbsTol is an absolute floor: deltas smaller than it are unchanged
	// regardless of RelTol (useful for near-zero baselines).
	AbsTol float64
	// EventsTol is the floor band on the selfbench throughput gates
	// (<= 0 means selfbench.DefaultEventsTol).
	EventsTol float64
	// AllocsTol is the ceiling band on the selfbench allocation gate
	// (<= 0 means selfbench.DefaultAllocsTol).
	AllocsTol float64
}

func (o Options) normalize() Options {
	if o.EventsTol <= 0 {
		o.EventsTol = selfbench.DefaultEventsTol
	}
	if o.AllocsTol <= 0 {
		o.AllocsTol = selfbench.DefaultAllocsTol
	}
	return o
}

// within reports whether new is inside the tolerance band around base.
func (o Options) within(base, new float64) bool {
	d := math.Abs(new - base)
	if d == 0 || d <= o.AbsTol {
		return true
	}
	return d <= o.RelTol*math.Abs(base)
}

// Verdict classifies one finding.
type Verdict string

const (
	// VerdictRegressed marks a delta that makes the run worse (or whose
	// direction is unknown — for a regression gate, unexplained drift
	// fails).
	VerdictRegressed Verdict = "regressed"
	// VerdictMissing marks an item present in the baseline but absent
	// from the fresh run.
	VerdictMissing Verdict = "missing"
	// VerdictNew marks an item absent from the baseline.
	VerdictNew Verdict = "new"
	// VerdictChanged marks a non-numeric difference with no better/worse
	// direction (identity flags).
	VerdictChanged Verdict = "changed"
	// VerdictImproved marks a delta in the metric's good direction.
	VerdictImproved Verdict = "improved"
)

// rank orders verdicts most-severe first for the ranked finding list.
func (v Verdict) rank() int {
	switch v {
	case VerdictRegressed:
		return 0
	case VerdictMissing:
		return 1
	case VerdictNew:
		return 2
	case VerdictChanged:
		return 3
	default:
		return 4
	}
}

// fails reports whether the verdict should fail a regression gate.
func (v Verdict) fails() bool { return v == VerdictRegressed || v == VerdictMissing }

// Finding is one attributed difference between the two reports.
type Finding struct {
	Kind     string  `json:"kind"` // metric, bench, attribution, critical-path, series, figure, alert, identity, determinism
	Verdict  Verdict `json:"verdict"`
	Key      string  `json:"key"`
	Base     float64 `json:"base,omitempty"`
	New      float64 `json:"new,omitempty"`
	DeltaPct float64 `json:"delta_pct,omitempty"`
	Detail   string  `json:"detail,omitempty"`
}

// Gate is one selfbench aggregate check; every gate renders a line
// (pass or fail) so the human summary always shows the gated figures.
type Gate struct {
	Name     string  `json:"name"`
	Mode     string  `json:"mode"` // floor, ceil, info
	Base     float64 `json:"base"`
	New      float64 `json:"new"`
	DeltaPct float64 `json:"delta_pct"`
	Bound    float64 `json:"bound,omitempty"`
	Pass     bool    `json:"pass"`
}

// Divergence names the first point where two same-seed span lists stop
// agreeing — the determinism-triage answer.
type Divergence struct {
	Index     int     `json:"index"`
	Field     string  `json:"field"`
	Base      string  `json:"base,omitempty"`
	New       string  `json:"new,omitempty"`
	TraceID   string  `json:"trace_id"`
	SpanID    string  `json:"span_id,omitempty"`
	Phase     string  `json:"phase"`
	Node      string  `json:"node,omitempty"`
	VirtualUs float64 `json:"virtual_us"`
}

// String renders the one-line diagnosis CI prints on a cmp failure.
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "first divergent span at index %d: %s", d.Index, d.Field)
	if d.Base != "" || d.New != "" {
		fmt.Fprintf(&b, " %s vs %s", d.Base, d.New)
	}
	fmt.Fprintf(&b, " (trace %s, virtual %.1fus, phase %s", d.TraceID, d.VirtualUs, d.Phase)
	if d.Node != "" {
		fmt.Fprintf(&b, ", node %s", d.Node)
	}
	b.WriteString(")")
	return b.String()
}

// Result is the full comparison outcome.
type Result struct {
	Schema      string      `json:"schema"`
	Source      string      `json:"source"`
	Seed        int64       `json:"seed"`
	Scale       float64     `json:"scale"`
	Compared    int         `json:"compared"`
	Unchanged   int         `json:"unchanged"`
	Gates       []Gate      `json:"gates,omitempty"`
	Findings    []Finding   `json:"findings"`
	Determinism *Divergence `json:"determinism,omitempty"`
}

// Regressed reports whether the comparison should fail a gate: any
// regressed/missing finding, any failed gate, or a determinism
// divergence.
func (r *Result) Regressed() bool {
	if r.Determinism != nil {
		return true
	}
	for _, g := range r.Gates {
		if !g.Pass {
			return true
		}
	}
	for _, f := range r.Findings {
		if f.Verdict.fails() {
			return true
		}
	}
	return false
}

// MismatchError reports artifacts that are not comparable. cmd/trenv-diff
// maps it to its own exit code so CI can tell "regressed" from "you
// compared the wrong files".
type MismatchError struct {
	Field string
	Base  string
	New   string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("diff: %s mismatch: baseline %s vs fresh %s (artifacts are not comparable)", e.Field, e.Base, e.New)
}

// checkIdentity refuses pairs that disagree on schema, source, seed, or
// scale.
func checkIdentity(a, b *report.Report) error {
	if a.Schema != b.Schema {
		return &MismatchError{Field: "schema", Base: a.Schema, New: b.Schema}
	}
	if a.Source != b.Source {
		return &MismatchError{Field: "source", Base: a.Source, New: b.Source}
	}
	if a.Seed != b.Seed {
		return &MismatchError{Field: "seed", Base: fmt.Sprint(a.Seed), New: fmt.Sprint(b.Seed)}
	}
	if a.Scale != b.Scale {
		return &MismatchError{Field: "scale", Base: fmt.Sprintf("%g", a.Scale), New: fmt.Sprintf("%g", b.Scale)}
	}
	return nil
}

// direction classifies a metric key: +1 when higher is worse (latency,
// errors, faults), -1 when higher is better (hits, throughput,
// sharing), 0 when unknown. Unknown deltas beyond tolerance count as
// regressed: for a baseline gate, unexplained drift fails.
func direction(key string) int {
	k := strings.ToLower(key)
	for _, worse := range []string{
		"error", "fault", "retr", "dropped", "wedged", "evict", "fallback",
		"crash", "unavail", "_us", "_ms", "latency", "burn", "alloc", "miss",
		"redispatch", "deadline", "cancelled", "exhausted",
	} {
		if strings.Contains(k, worse) {
			return 1
		}
	}
	for _, better := range []string{
		"warm", "hit", "sharing", "dedup", "per_sec", "prefetched",
		"hedge_win",
	} {
		if strings.Contains(k, better) {
			return -1
		}
	}
	return 0
}

// verdictFor classifies an out-of-tolerance numeric delta.
func verdictFor(key string, base, new float64) Verdict {
	switch d := direction(key); {
	case d > 0 && new < base, d < 0 && new > base:
		return VerdictImproved
	default:
		return VerdictRegressed
	}
}

func deltaPct(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (new - base) / math.Abs(base) * 100
}

// Compare diffs fresh against base. It refuses incomparable pairs with
// *MismatchError; every other outcome is a Result.
func Compare(base, fresh *report.Report, o Options) (*Result, error) {
	o = o.normalize()
	if err := checkIdentity(base, fresh); err != nil {
		return nil, err
	}
	base.Sort()
	fresh.Sort()
	res := &Result{
		Schema: ResultSchema,
		Source: base.Source,
		Seed:   base.Seed,
		Scale:  base.Scale,
	}
	res.compareFlags(base, fresh)
	res.compareBench(base, fresh, o)
	res.compareMetrics(base, fresh, o)
	res.compareFigures(base, fresh)
	res.compareAttribution(base, fresh, o)
	res.compareCriticalPath(base, fresh)
	res.compareSeries(base, fresh, o)
	res.compareAlerts(base, fresh)
	res.triage(base, fresh)
	res.rankFindings()
	return res, nil
}

// compareFlags reports identity-flag drift (informational: a changed
// flag explains deltas, it is not itself a regression).
func (r *Result) compareFlags(a, b *report.Report) {
	keys := map[string]bool{}
	for k := range a.Flags {
		keys[k] = true
	}
	for k := range b.Flags {
		keys[k] = true
	}
	for _, k := range sortedKeys(keys) {
		av, aok := a.Flags[k]
		bv, bok := b.Flags[k]
		if aok && bok && av == bv {
			continue
		}
		r.Findings = append(r.Findings, Finding{
			Kind:    "identity",
			Verdict: VerdictChanged,
			Key:     "flag/" + k,
			Detail:  fmt.Sprintf("baseline %q vs fresh %q", av, bv),
		})
	}
}

// benchGates defines the selfbench aggregate checks in render order:
// the same three gates scripts/bench-compare.sh applied, the rest
// informational.
var benchGates = []struct {
	name string
	mode string // floor, ceil, info
}{
	{"events_per_sec", "floor"},
	{"invocations_per_sec", "floor"},
	{"allocs_per_event", "ceil"},
	{"spans_per_sec", "info"},
	{"bytes_per_event", "info"},
	{"wall_ms_per_sim_sec", "info"},
	{"obs_overhead_pct", "info"},
}

// compareBench applies the tolerance-band gates to the wall-clock Bench
// block (skipped unless both reports carry one).
func (r *Result) compareBench(a, b *report.Report, o Options) {
	if len(a.Bench) == 0 || len(b.Bench) == 0 {
		return
	}
	for _, g := range benchGates {
		base, aok := a.Bench[g.name]
		new, bok := b.Bench[g.name]
		if !aok || !bok {
			continue
		}
		gate := Gate{Name: g.name, Mode: g.mode, Base: base, New: new, DeltaPct: deltaPct(base, new), Pass: true}
		if g.mode != "info" && base > 0 {
			tol := o.EventsTol
			if g.mode == "ceil" {
				tol = o.AllocsTol
				gate.Bound = base * (1 + tol)
				gate.Pass = new <= gate.Bound
			} else {
				gate.Bound = base * (1 - tol)
				gate.Pass = new >= gate.Bound
			}
		}
		r.Compared++
		if gate.Pass {
			r.Unchanged++
		} else {
			r.Findings = append(r.Findings, Finding{
				Kind:     "bench",
				Verdict:  VerdictRegressed,
				Key:      g.name,
				Base:     base,
				New:      new,
				DeltaPct: gate.DeltaPct,
				Detail:   fmt.Sprintf("%s %.4g crossed", g.mode, gate.Bound),
			})
		}
		r.Gates = append(r.Gates, gate)
	}
}

func metricKey(m report.Metric) string {
	if m.Run == "" {
		return m.Key
	}
	return m.Run + "/" + m.Key
}

// compareMetrics diffs the gathered end-state metrics.
func (r *Result) compareMetrics(a, b *report.Report, o Options) {
	am := map[string]report.Metric{}
	for _, m := range a.Metrics {
		am[metricKey(m)] = m
	}
	bm := map[string]report.Metric{}
	for _, m := range b.Metrics {
		bm[metricKey(m)] = m
	}
	keys := map[string]bool{}
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	for _, k := range sortedKeys(keys) {
		av, aok := am[k]
		bv, bok := bm[k]
		switch {
		case !bok:
			r.Findings = append(r.Findings, Finding{Kind: "metric", Verdict: VerdictMissing, Key: k, Base: av.Value})
		case !aok:
			r.Findings = append(r.Findings, Finding{Kind: "metric", Verdict: VerdictNew, Key: k, New: bv.Value})
		default:
			r.Compared++
			if o.within(av.Value, bv.Value) {
				r.Unchanged++
				continue
			}
			r.Findings = append(r.Findings, Finding{
				Kind:     "metric",
				Verdict:  verdictFor(k, av.Value, bv.Value),
				Key:      k,
				Base:     av.Value,
				New:      bv.Value,
				DeltaPct: deltaPct(av.Value, bv.Value),
			})
		}
	}
}

// compareFigures quotes the first differing rendered row per figure —
// the most human-meaningful delta a paper-reproduction diff can show.
func (r *Result) compareFigures(a, b *report.Report) {
	bf := map[string]report.Figure{}
	for _, f := range b.Figures {
		bf[f.ID] = f
	}
	seen := map[string]bool{}
	for _, af := range a.Figures {
		seen[af.ID] = true
		fig, ok := bf[af.ID]
		if !ok {
			r.Findings = append(r.Findings, Finding{Kind: "figure", Verdict: VerdictMissing, Key: "figure/" + af.ID})
			continue
		}
		r.Compared++
		n := len(af.Lines)
		if len(fig.Lines) < n {
			n = len(fig.Lines)
		}
		diffLine := -1
		for i := 0; i < n; i++ {
			if af.Lines[i] != fig.Lines[i] {
				diffLine = i
				break
			}
		}
		if diffLine < 0 && len(af.Lines) != len(fig.Lines) {
			diffLine = n
		}
		if diffLine < 0 {
			r.Unchanged++
			continue
		}
		baseLine, newLine := "(absent)", "(absent)"
		if diffLine < len(af.Lines) {
			baseLine = af.Lines[diffLine]
		}
		if diffLine < len(fig.Lines) {
			newLine = fig.Lines[diffLine]
		}
		r.Findings = append(r.Findings, Finding{
			Kind:    "figure",
			Verdict: VerdictRegressed,
			Key:     fmt.Sprintf("figure/%s/line%d", af.ID, diffLine),
			Detail:  fmt.Sprintf("baseline %q vs fresh %q", baseLine, newLine),
		})
	}
	ids := make([]string, 0, len(bf))
	for id := range bf {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		r.Findings = append(r.Findings, Finding{Kind: "figure", Verdict: VerdictNew, Key: "figure/" + id})
	}
}

// compareAttribution diffs the per-function per-phase latency
// attribution ("restore p99 +12%, driven by pool-fetch self-time").
func (r *Result) compareAttribution(a, b *report.Report, o Options) {
	if a.Analysis == nil || b.Analysis == nil {
		return
	}
	type quant struct {
		name string
		val  func(p obsPhase) float64
	}
	quants := []quant{
		{"p50_us", func(p obsPhase) float64 { return p.P50Us }},
		{"p99_us", func(p obsPhase) float64 { return p.P99Us }},
	}
	bfn := map[string]map[string]obsPhase{}
	for _, attr := range b.Analysis.Attribution {
		m := map[string]obsPhase{}
		for _, p := range attr.Phases {
			m[p.Phase] = obsPhase{P50Us: p.P50Us, P99Us: p.P99Us}
		}
		bfn[attr.Function] = m
	}
	for _, attr := range a.Analysis.Attribution {
		phases, ok := bfn[attr.Function]
		if !ok {
			r.Findings = append(r.Findings, Finding{
				Kind: "attribution", Verdict: VerdictMissing,
				Key: "attr/" + attr.Function,
			})
			continue
		}
		for _, p := range attr.Phases {
			bp, ok := phases[p.Phase]
			if !ok {
				r.Findings = append(r.Findings, Finding{
					Kind: "attribution", Verdict: VerdictMissing,
					Key: fmt.Sprintf("attr/%s/%s", attr.Function, p.Phase),
				})
				continue
			}
			ap := obsPhase{P50Us: p.P50Us, P99Us: p.P99Us}
			for _, q := range quants {
				base, new := q.val(ap), q.val(bp)
				r.Compared++
				if o.within(base, new) {
					r.Unchanged++
					continue
				}
				verdict := VerdictRegressed
				if new < base {
					verdict = VerdictImproved
				}
				r.Findings = append(r.Findings, Finding{
					Kind:     "attribution",
					Verdict:  verdict,
					Key:      fmt.Sprintf("attr/%s/%s/%s", attr.Function, p.Phase, q.name),
					Base:     base,
					New:      new,
					DeltaPct: deltaPct(base, new),
				})
			}
		}
	}
}

// obsPhase keeps just the quantiles the attribution diff reads.
type obsPhase struct{ P50Us, P99Us float64 }

// compareCriticalPath diffs the slowest invocation's phase chain: a
// phase entering the path is new work on the latency tail, a phase
// leaving it is won time.
func (r *Result) compareCriticalPath(a, b *report.Report) {
	if a.Analysis == nil || b.Analysis == nil ||
		len(a.Analysis.Slowest) == 0 || len(b.Analysis.Slowest) == 0 {
		return
	}
	as, bs := a.Analysis.Slowest[0], b.Analysis.Slowest[0]
	r.Compared++
	if as.Function != bs.Function || as.TraceID != bs.TraceID {
		r.Findings = append(r.Findings, Finding{
			Kind:    "critical-path",
			Verdict: VerdictChanged,
			Key:     "critical-path/slowest",
			Detail: fmt.Sprintf("slowest invocation changed: %s (trace %s, %.1fus) vs %s (trace %s, %.1fus)",
				as.Function, as.TraceID, as.DurUs, bs.Function, bs.TraceID, bs.DurUs),
		})
	} else {
		r.Unchanged++
	}
	aSelf := map[string]float64{}
	for _, step := range as.CriticalPath {
		aSelf[step.Name] = step.SelfUs
	}
	bSelf := map[string]float64{}
	for _, step := range bs.CriticalPath {
		bSelf[step.Name] = step.SelfUs
	}
	keys := map[string]bool{}
	for k := range aSelf {
		keys[k] = true
	}
	for k := range bSelf {
		keys[k] = true
	}
	for _, phase := range sortedKeys(keys) {
		av, aok := aSelf[phase]
		bv, bok := bSelf[phase]
		switch {
		case aok && bok:
			continue
		case !bok:
			r.Findings = append(r.Findings, Finding{
				Kind:    "critical-path",
				Verdict: VerdictImproved,
				Key:     "critical-path/" + phase,
				Base:    av,
				Detail:  fmt.Sprintf("phase left the critical path (was %.1fus self-time)", av),
			})
		default:
			r.Findings = append(r.Findings, Finding{
				Kind:    "critical-path",
				Verdict: VerdictRegressed,
				Key:     "critical-path/" + phase,
				New:     bv,
				Detail:  fmt.Sprintf("phase entered the critical path (%.1fus self-time)", bv),
			})
		}
	}
}

func seriesKey(s report.Series) string {
	if s.Run == "" {
		return s.Key
	}
	return s.Run + "/" + s.Key
}

// compareSeries finds, per series present in both reports, the first
// sampled point where the runs diverge beyond tolerance.
func (r *Result) compareSeries(a, b *report.Report, o Options) {
	bm := map[string]report.Series{}
	for _, s := range b.Series {
		bm[seriesKey(s)] = s
	}
	seen := map[string]bool{}
	for _, as := range a.Series {
		k := seriesKey(as)
		seen[k] = true
		bs, ok := bm[k]
		if !ok {
			r.Findings = append(r.Findings, Finding{Kind: "series", Verdict: VerdictMissing, Key: k})
			continue
		}
		r.Compared++
		if f, diverged := firstSeriesDivergence(as, bs, o); diverged {
			f.Key = k
			r.Findings = append(r.Findings, f)
		} else {
			r.Unchanged++
		}
	}
	keys := make([]string, 0, len(bm))
	for k := range bm {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.Findings = append(r.Findings, Finding{Kind: "series", Verdict: VerdictNew, Key: k})
	}
}

func alertKey(a report.AlertRecord) string {
	if a.Run == "" {
		return "alert/" + a.Rule
	}
	return "alert/" + a.Run + "/" + a.Rule
}

// compareAlerts diffs end-of-run alert states: a rule firing in the
// fresh run but not in the baseline is a regression in its own right
// (the run crossed an operator-facing line the baseline never did),
// firing more often is worse, firing less or resolving is improvement.
func (r *Result) compareAlerts(a, b *report.Report) {
	bm := map[string]report.AlertRecord{}
	for _, ar := range b.Alerts {
		bm[alertKey(ar)] = ar
	}
	seen := map[string]bool{}
	for _, aa := range a.Alerts {
		k := alertKey(aa)
		seen[k] = true
		ba, ok := bm[k]
		if !ok {
			r.Findings = append(r.Findings, Finding{Kind: "alert", Verdict: VerdictMissing, Key: k,
				Detail: fmt.Sprintf("rule %s no longer evaluated", aa.Spec)})
			continue
		}
		r.Compared++
		aFiring := aa.State == "firing"
		bFiring := ba.State == "firing"
		switch {
		case !aFiring && bFiring:
			r.Findings = append(r.Findings, Finding{
				Kind: "alert", Verdict: VerdictRegressed, Key: k,
				Base: float64(aa.Fired), New: float64(ba.Fired),
				Detail: fmt.Sprintf("now firing (%s): %s", ba.Spec, lastIncidentDetail(ba)),
			})
		case aFiring && !bFiring:
			r.Findings = append(r.Findings, Finding{
				Kind: "alert", Verdict: VerdictImproved, Key: k,
				Base: float64(aa.Fired), New: float64(ba.Fired),
				Detail: fmt.Sprintf("no longer firing (%s)", ba.Spec),
			})
		case ba.Fired > aa.Fired:
			r.Findings = append(r.Findings, Finding{
				Kind: "alert", Verdict: VerdictRegressed, Key: k,
				Base: float64(aa.Fired), New: float64(ba.Fired), DeltaPct: deltaPct(float64(aa.Fired), float64(ba.Fired)),
				Detail: fmt.Sprintf("fired %d times vs %d (%s)", ba.Fired, aa.Fired, ba.Spec),
			})
		case ba.Fired < aa.Fired:
			r.Findings = append(r.Findings, Finding{
				Kind: "alert", Verdict: VerdictImproved, Key: k,
				Base: float64(aa.Fired), New: float64(ba.Fired), DeltaPct: deltaPct(float64(aa.Fired), float64(ba.Fired)),
				Detail: fmt.Sprintf("fired %d times vs %d (%s)", ba.Fired, aa.Fired, ba.Spec),
			})
		default:
			r.Unchanged++
		}
	}
	keys := make([]string, 0, len(bm))
	for k := range bm {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		ba := bm[k]
		verdict := VerdictNew
		detail := fmt.Sprintf("rule %s only in fresh run", ba.Spec)
		if ba.State == "firing" || ba.Fired > 0 {
			// A brand-new rule that also fired is a regression signal, not
			// just inventory drift.
			verdict = VerdictRegressed
			detail = fmt.Sprintf("new rule fired %d times (%s): %s", ba.Fired, ba.Spec, lastIncidentDetail(ba))
		}
		r.Findings = append(r.Findings, Finding{Kind: "alert", Verdict: verdict, Key: k,
			New: float64(ba.Fired), Detail: detail})
	}
}

// lastIncidentDetail quotes the most recent incident's detail and first
// trace link, the fastest path from a diff line to a critical path.
func lastIncidentDetail(ar report.AlertRecord) string {
	if len(ar.Incidents) == 0 {
		return "no incident captured"
	}
	inc := ar.Incidents[len(ar.Incidents)-1]
	if len(inc.TraceIDs) == 0 {
		return inc.Detail
	}
	return fmt.Sprintf("%s (trace %s)", inc.Detail, inc.TraceIDs[0])
}

// firstSeriesDivergence walks two sampled series in step and reports
// the first point whose instant or value disagrees beyond tolerance.
func firstSeriesDivergence(a, b report.Series, o Options) (Finding, bool) {
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	for i := 0; i < n; i++ {
		ap, bp := a.Points[i], b.Points[i]
		if ap.TMS != bp.TMS {
			return Finding{
				Kind:    "series",
				Verdict: VerdictRegressed,
				Detail:  fmt.Sprintf("sample instants diverge at point %d: t=%.1fms vs t=%.1fms", i, ap.TMS, bp.TMS),
			}, true
		}
		if !o.within(ap.V, bp.V) {
			return Finding{
				Kind:     "series",
				Verdict:  verdictFor(a.Key, ap.V, bp.V),
				Base:     ap.V,
				New:      bp.V,
				DeltaPct: deltaPct(ap.V, bp.V),
				Detail:   fmt.Sprintf("first divergence at t=%.1fms (point %d)", ap.TMS, i),
			}, true
		}
	}
	if len(a.Points) != len(b.Points) {
		return Finding{
			Kind:    "series",
			Verdict: VerdictRegressed,
			Detail:  fmt.Sprintf("point counts diverge after an identical prefix: %d vs %d", len(a.Points), len(b.Points)),
		}, true
	}
	return Finding{}, false
}

// rankFindings orders the verdict list most-severe first with total,
// deterministic tie-breaks: verdict rank, then |delta| descending, then
// kind, then key.
func (r *Result) rankFindings() {
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if ar, br := a.Verdict.rank(), b.Verdict.rank(); ar != br {
			return ar < br
		}
		if ad, bd := math.Abs(a.DeltaPct), math.Abs(b.DeltaPct); ad != bd {
			return ad > bd
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Key < b.Key
	})
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
