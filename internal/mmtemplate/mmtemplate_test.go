package mmtemplate

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/pagetable"
)

func pools() (cxl, rdma *mem.Pool) {
	lat := mem.DefaultLatencyModel()
	return mem.NewPool(mem.CXL, 0, lat), mem.NewPool(mem.RDMA, 0, lat)
}

// buildTemplate assembles the paper's Figure 12 example: a template with
// regions, some backed by CXL, some by RDMA.
func buildTemplate(t *testing.T, reg *Registry, cxl, rdma *mem.Pool) *Template {
	t.Helper()
	tpl := reg.Create("funcX/pid1")
	if err := tpl.AddMap("text", 0x400000, 16*mem.PageSize, pagetable.Read|pagetable.Exec, pagetable.File); err != nil {
		t.Fatal(err)
	}
	if err := tpl.AddMap("heap", 0x7FFF4000, 64*mem.PageSize, pagetable.Read|pagetable.Write, pagetable.Anon); err != nil {
		t.Fatal(err)
	}
	if err := tpl.SetupPT(0x400000, 16*mem.PageSize, 0x88000, cxl); err != nil {
		t.Fatal(err)
	}
	// Multi-layer heap: hot half on CXL, cold half on RDMA.
	if err := tpl.SetupPT(0x7FFF4000, 32*mem.PageSize, 0x100000, cxl); err != nil {
		t.Fatal(err)
	}
	if err := tpl.SetupPT(0x7FFF4000+32*mem.PageSize, 32*mem.PageSize, 0x200000, rdma); err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	a := reg.Create("a")
	b := reg.Create("b")
	if a.ID() == b.ID() {
		t.Fatal("duplicate template IDs")
	}
	if got, ok := reg.Get(a.ID()); !ok || got != a {
		t.Fatal("Get failed")
	}
	if reg.Len() != 2 {
		t.Fatalf("len = %d", reg.Len())
	}
	if err := reg.Destroy(a.ID()); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get(a.ID()); ok {
		t.Fatal("destroyed template still visible")
	}
	if err := reg.Destroy(a.ID()); err == nil {
		t.Fatal("double destroy succeeded")
	}
}

func TestAddMapValidation(t *testing.T) {
	reg := NewRegistry()
	tpl := reg.Create("t")
	if err := tpl.AddMap("a", 0, 4*mem.PageSize, pagetable.Read, pagetable.Anon); err != nil {
		t.Fatal(err)
	}
	if err := tpl.AddMap("b", 2*mem.PageSize, 4*mem.PageSize, pagetable.Read, pagetable.Anon); err == nil {
		t.Fatal("overlapping map accepted")
	}
	if err := tpl.AddMap("c", 0x100000, 100, pagetable.Read, pagetable.Anon); err == nil {
		t.Fatal("unaligned length accepted")
	}
	if err := tpl.AddMap("d", 0x100000, 0, pagetable.Read, pagetable.Anon); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestSetupPTValidation(t *testing.T) {
	reg := NewRegistry()
	cxl, _ := pools()
	tpl := reg.Create("t")
	tpl.AddMap("a", 0, 8*mem.PageSize, pagetable.Read, pagetable.Anon)
	if err := tpl.SetupPT(0, 4*mem.PageSize, 0, nil); err == nil {
		t.Fatal("nil pool accepted")
	}
	if err := tpl.SetupPT(0, 16*mem.PageSize, 0, cxl); err == nil {
		t.Fatal("range beyond map accepted")
	}
	if err := tpl.SetupPT(0x900000, 4*mem.PageSize, 0, cxl); err == nil {
		t.Fatal("range outside any map accepted")
	}
	if err := tpl.SetupPT(0, 4*mem.PageSize, 0, cxl); err != nil {
		t.Fatal(err)
	}
	if err := tpl.SetupPT(2*mem.PageSize, 4*mem.PageSize, 0, cxl); err == nil {
		t.Fatal("overlapping setup accepted")
	}
}

func TestAttachInstallsCorrectStates(t *testing.T) {
	reg := NewRegistry()
	cxl, rdma := pools()
	tpl := buildTemplate(t, reg, cxl, rdma)
	tr := mem.NewTracker("node", 0)
	as, lat, err := tpl.Attach(tr, mem.DefaultLatencyModel(), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("attach was free")
	}
	if tr.Used() != 0 {
		t.Fatalf("attach allocated %d local bytes; must copy metadata only", tr.Used())
	}
	text := as.Region("text")
	if text.CountIn(pagetable.RemoteDirect) != 16 {
		t.Fatalf("text remote-direct pages = %d", text.CountIn(pagetable.RemoteDirect))
	}
	heap := as.Region("heap")
	if heap.CountIn(pagetable.RemoteDirect) != 32 || heap.CountIn(pagetable.RemoteLazy) != 32 {
		t.Fatalf("heap states: direct=%d lazy=%d", heap.CountIn(pagetable.RemoteDirect), heap.CountIn(pagetable.RemoteLazy))
	}
	if tpl.Attaches() != 1 {
		t.Fatalf("attaches = %d", tpl.Attaches())
	}
}

func TestAttachSharingAndCoWIsolation(t *testing.T) {
	reg := NewRegistry()
	cxl, rdma := pools()
	tpl := buildTemplate(t, reg, cxl, rdma)
	tr := mem.NewTracker("node", 0)
	lat := mem.DefaultLatencyModel()
	cost := DefaultCostModel()
	rng := rand.New(rand.NewSource(1))

	as1, _, err := tpl.Attach(tr, lat, cost)
	if err != nil {
		t.Fatal(err)
	}
	as2, _, err := tpl.Attach(tr, lat, cost)
	if err != nil {
		t.Fatal(err)
	}
	// Instance 1 writes its heap; instance 2 must be unaffected.
	h1 := as1.Region("heap")
	if _, err := as1.Access(rng, h1, 32, 32); err != nil {
		t.Fatal(err)
	}
	if h1.CountIn(pagetable.Local) != 32 {
		t.Fatalf("instance1 local pages = %d", h1.CountIn(pagetable.Local))
	}
	h2 := as2.Region("heap")
	if h2.CountIn(pagetable.RemoteDirect) != 32 || h2.CountIn(pagetable.Local) != 0 {
		t.Fatal("CoW write in one instance leaked into another")
	}
	// A third attach still sees pristine remote state.
	as3, _, _ := tpl.Attach(tr, lat, cost)
	if as3.Region("heap").CountIn(pagetable.RemoteDirect) != 32 {
		t.Fatal("template mutated by attached instance")
	}
	if tpl.Attaches() != 3 {
		t.Fatalf("attaches = %d", tpl.Attaches())
	}
}

func TestMetadataScalesWithImageNotContents(t *testing.T) {
	reg := NewRegistry()
	cxl, _ := pools()
	small := reg.Create("small")
	small.AddMap("a", 0, 16*mem.PageSize, pagetable.Read, pagetable.Anon)
	small.SetupPT(0, 16*mem.PageSize, 0, cxl)

	// ~95 MB image like JS.
	jsPages := int64(95<<20) / mem.PageSize
	big := reg.Create("js")
	big.AddMap("a", 0, jsPages*mem.PageSize, pagetable.Read, pagetable.Anon)
	big.SetupPT(0, jsPages*mem.PageSize, 0, cxl)

	if big.MetadataBytes() <= small.MetadataBytes() {
		t.Fatal("metadata should grow with pages")
	}
	// Paper: metadata < 400 KB for JS's ~95 MB image.
	if got := big.MetadataBytes(); got > 400<<10 {
		t.Fatalf("JS metadata = %d bytes, want < 400 KiB", got)
	}
	if big.MappedBytes() != jsPages*mem.PageSize {
		t.Fatalf("mapped bytes = %d", big.MappedBytes())
	}
	if big.RemoteBytes() != jsPages*mem.PageSize {
		t.Fatalf("remote bytes = %d", big.RemoteBytes())
	}
}

func TestAttachLatencyMuchLessThanCopy(t *testing.T) {
	reg := NewRegistry()
	cxl, _ := pools()
	imgBytes := int64(95 << 20)
	pages := imgBytes / mem.PageSize
	tpl := reg.Create("js")
	tpl.AddMap("a", 0, pages*mem.PageSize, pagetable.Read|pagetable.Write, pagetable.Anon)
	tpl.SetupPT(0, pages*mem.PageSize, 0, cxl)
	tr := mem.NewTracker("node", 0)
	lat := mem.DefaultLatencyModel()
	_, attachLat, err := tpl.Attach(tr, lat, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	copyLat := lat.CopyCost(imgBytes)
	if attachLat*10 > copyLat {
		t.Fatalf("attach (%v) should be >10x faster than full copy (%v)", attachLat, copyLat)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tpl := reg.Create("t")
				if _, ok := reg.Get(tpl.ID()); !ok {
					t.Error("created template not found")
					return
				}
				reg.Destroy(tpl.ID())
			}
		}()
	}
	wg.Wait()
	if reg.Len() != 0 {
		t.Fatalf("len = %d after balanced create/destroy", reg.Len())
	}
}

func TestDestroyedTemplateAttachesKeepWorking(t *testing.T) {
	reg := NewRegistry()
	cxl, rdma := pools()
	tpl := buildTemplate(t, reg, cxl, rdma)
	tr := mem.NewTracker("node", 0)
	as, _, err := tpl.Attach(tr, mem.DefaultLatencyModel(), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	reg.Destroy(tpl.ID())
	rng := rand.New(rand.NewSource(1))
	if _, err := as.Access(rng, as.Region("text"), 16, 0); err != nil {
		t.Fatalf("attached address space broken by destroy: %v", err)
	}
}
