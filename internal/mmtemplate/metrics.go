package mmtemplate

import "repro/internal/obs"

// RegisterMetrics publishes the registry's template population and
// sharing series into reg under the given labels (nil for a single-node
// registry, scope/rack labels for a shared store in a fleet).
func (r *Registry) RegisterMetrics(reg *obs.Registry, labels map[string]string) {
	reg.GaugeFunc("trenv_templates",
		"Live memory templates in the registry.", labels,
		func() float64 { return float64(r.Len()) })
	reg.CounterFunc("trenv_template_attaches_total",
		"Cumulative template attaches (metadata-only restores).", labels,
		r.TotalAttaches)
	reg.GaugeFunc("trenv_template_sharing_factor",
		"Attached mms per live template.", labels,
		r.SharingFactor)
}
