// Package mmtemplate implements TrEnv's mm-template abstraction (§5.1):
// an in-kernel object resembling an mm_struct that (1) is not bound to a
// particular process and can be attached to any process, (2) treats all
// remote memory as read-only with copy-on-write, and (3) gives fine-
// grained control over page-table entries mapping virtual addresses to
// physical offsets in remote memory pools.
//
// The API mirrors the paper's Figure 11:
//
//	reg.Create(name)            // mmt_create
//	t.AddMap(...)               // mmt_add_map
//	t.SetupPT(...)              // mmt_setup_pt
//	t.Attach(...)               // mmt_attach
//	reg.Destroy(id)             // mmt_destroy
//
// Templates hold only metadata (VMA layout + preconfigured PTEs), so
// attaching is a metadata copy — no memory-image copy and no mmap storm —
// which is where TrEnv's restore speedup comes from. Byte-addressable
// pools (CXL) get valid write-protected PTEs (reads need no fault);
// message-based pools (RDMA/NAS) get invalid PTEs carrying the remote
// address, resolved lazily by major faults.
package mmtemplate

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mem"
	"repro/internal/pagetable"
)

// CostModel prices the attach path.
type CostModel struct {
	// AttachSyscall is the fixed cost of the mmt_attach ioctl.
	AttachSyscall time.Duration
	// MetadataBandwidth is the kernel-to-kernel copy rate for template
	// metadata (page tables + VMA descriptors).
	MetadataBandwidth float64 // bytes/s
	// PerMapOverhead is the per-VMA descriptor copy/insert cost.
	PerMapOverhead time.Duration
}

// DefaultCostModel returns attach costs calibrated so that a ~95 MB
// snapshot (JS) attaches in well under a millisecond and an ~855 MB one
// (IR) in a couple of milliseconds, matching the paper's §9.4 breakdown.
func DefaultCostModel() CostModel {
	return CostModel{
		AttachSyscall:     30 * time.Microsecond,
		MetadataBandwidth: 1 << 30, // 1 GiB/s
		PerMapOverhead:    2 * time.Microsecond,
	}
}

// bytesPerPTE is the metadata weight of one preconfigured page-table
// entry, including amortized intermediate page-table levels.
const bytesPerPTE = 10

// bytesPerMap is the metadata weight of one VMA descriptor.
const bytesPerMap = 256

// Registry holds templates indexed by ID, mirroring the kernel's XArray.
// It is safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	next      uint64
	templates map[uint64]*Template
	attaches  int64 // cumulative, survives template destruction
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{templates: make(map[uint64]*Template)}
}

// Create allocates a new empty template (mmt_create).
func (r *Registry) Create(name string) *Template {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	t := &Template{id: r.next, name: name, reg: r}
	r.templates[t.id] = t
	return t
}

// Get looks a template up by ID.
func (r *Registry) Get(id uint64) (*Template, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.templates[id]
	return t, ok
}

// Destroy removes a template (mmt_destroy). Address spaces already
// attached keep working: they own copies of the metadata.
func (r *Registry) Destroy(id uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.templates[id]; !ok {
		return fmt.Errorf("mmtemplate: destroy of unknown template %d", id)
	}
	delete(r.templates, id)
	return nil
}

// Len returns the number of live templates.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.templates)
}

// TotalAttaches returns the cumulative attach count across all
// templates ever created through this registry (monotone — destroyed
// templates keep contributing).
func (r *Registry) TotalAttaches() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attaches
}

// SharingFactor returns attached mms per live template — how many
// address spaces each shared memory template has spawned. Zero when no
// templates are live.
func (r *Registry) SharingFactor() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.templates) == 0 {
		return 0
	}
	var sum int64
	for _, t := range r.templates {
		sum += t.Attaches()
	}
	return float64(sum) / float64(len(r.templates))
}

func (r *Registry) noteAttach() {
	r.mu.Lock()
	r.attaches++
	r.mu.Unlock()
}

// Template is the metadata for one process's memory state.
type Template struct {
	id   uint64
	name string
	reg  *Registry

	mu       sync.Mutex
	maps     []*tmap
	attaches atomic.Int64 // atomic so registry-wide reads skip t.mu
}

type tmap struct {
	name   string
	start  uint64
	pages  int
	prot   pagetable.Prot
	kind   pagetable.MapKind
	setups []setup
}

type setup struct {
	firstPage int
	pages     int
	pool      *mem.Pool
	base      uint64
}

// ID returns the template's registry identifier.
func (t *Template) ID() uint64 { return t.id }

// Name returns the template's debug name.
func (t *Template) Name() string { return t.name }

// Attaches returns how many times the template has been attached.
func (t *Template) Attaches() int64 { return t.attaches.Load() }

// AddMap records a virtual memory area in the template (mmt_add_map).
// start/length are in bytes; length must be page aligned. Like the kernel
// API, it accepts both anonymous and file-backed mappings — the
// restriction that stock device-DAX imposes (no anonymous, no regular
// file) is exactly what the paper's custom driver removes.
func (t *Template) AddMap(name string, start uint64, length int64, prot pagetable.Prot, kind pagetable.MapKind) error {
	if length <= 0 || length%mem.PageSize != 0 {
		return fmt.Errorf("mmtemplate: map %q length %d not page aligned", name, length)
	}
	pages := int(length / mem.PageSize)
	t.mu.Lock()
	defer t.mu.Unlock()
	end := start + uint64(length)
	for _, m := range t.maps {
		mEnd := m.start + uint64(m.pages)*mem.PageSize
		if start < mEnd && m.start < end {
			return fmt.Errorf("mmtemplate: map %q overlaps %q", name, m.name)
		}
	}
	t.maps = append(t.maps, &tmap{name: name, start: start, pages: pages, prot: prot, kind: kind})
	return nil
}

// SetupPT preconfigures page-table entries for [start, start+length) to
// point at pool memory beginning at byte offset poolOffset
// (mmt_setup_pt). The range must lie within a single added map. For
// byte-addressable pools the entries are valid and write-protected; for
// message-based pools they are invalid and resolved lazily.
func (t *Template) SetupPT(start uint64, length int64, poolOffset uint64, pool *mem.Pool) error {
	if pool == nil {
		return fmt.Errorf("mmtemplate: SetupPT with nil pool")
	}
	if length <= 0 || length%mem.PageSize != 0 {
		return fmt.Errorf("mmtemplate: SetupPT length %d not page aligned", length)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.findMap(start, uint64(length))
	if m == nil {
		return fmt.Errorf("mmtemplate: SetupPT range [%#x,+%d) not covered by one map", start, length)
	}
	first := int((start - m.start) / mem.PageSize)
	pages := int(length / mem.PageSize)
	for _, s := range m.setups {
		if first < s.firstPage+s.pages && s.firstPage < first+pages {
			return fmt.Errorf("mmtemplate: SetupPT range overlaps existing setup in map %q", m.name)
		}
	}
	m.setups = append(m.setups, setup{firstPage: first, pages: pages, pool: pool, base: poolOffset})
	return nil
}

func (t *Template) findMap(start, length uint64) *tmap {
	for _, m := range t.maps {
		mEnd := m.start + uint64(m.pages)*mem.PageSize
		if start >= m.start && start+length <= mEnd {
			return m
		}
	}
	return nil
}

// MetadataBytes returns the size of the template's metadata: what Attach
// copies. For the paper's JS function (~95 MB image) this is well under
// 400 KB.
func (t *Template) MetadataBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, m := range t.maps {
		n += bytesPerMap
		for _, s := range m.setups {
			n += int64(s.pages) * bytesPerPTE
		}
	}
	return n
}

// MappedBytes returns the total virtual bytes the template describes.
func (t *Template) MappedBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, m := range t.maps {
		n += int64(m.pages) * mem.PageSize
	}
	return n
}

// RemoteBytes returns the bytes covered by preconfigured PTEs (resident
// in pools rather than local memory after attach).
func (t *Template) RemoteBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, m := range t.maps {
		for _, s := range m.setups {
			n += int64(s.pages) * mem.PageSize
		}
	}
	return n
}

// Attach instantiates the template into a fresh address space charging
// local pages to tracker (mmt_attach). It returns the new address space
// and the attach latency: a fixed syscall cost plus the metadata copy.
// No memory contents move and no local pages are allocated — pages stay
// remote until written (CoW) or, for lazy pools, first touched.
func (t *Template) Attach(tracker *mem.Tracker, lat mem.LatencyModel, cost CostModel) (*pagetable.AddressSpace, time.Duration, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	as := pagetable.NewAddressSpace(tracker, lat)
	for _, m := range t.maps {
		v, err := as.AddVMA(m.name, m.start, m.pages, m.prot, m.kind, nil, 0, pagetable.Unmapped)
		if err != nil {
			return nil, 0, fmt.Errorf("mmtemplate: attach %q: %w", t.name, err)
		}
		for _, s := range m.setups {
			state := pagetable.RemoteLazy
			if s.pool.Kind().ByteAddressable() {
				state = pagetable.RemoteDirect
			}
			if err := as.SetBacking(v, s.firstPage, s.pages, s.pool, s.base, state); err != nil {
				return nil, 0, fmt.Errorf("mmtemplate: attach %q: %w", t.name, err)
			}
		}
	}
	t.attaches.Add(1)
	if t.reg != nil {
		t.reg.noteAttach()
	}
	d := cost.AttachSyscall +
		time.Duration(float64(t.MetadataBytesLocked())/cost.MetadataBandwidth*float64(time.Second)) +
		time.Duration(len(t.maps))*cost.PerMapOverhead
	return as, d, nil
}

// MetadataBytesLocked is MetadataBytes for callers already holding t.mu.
func (t *Template) MetadataBytesLocked() int64 {
	var n int64
	for _, m := range t.maps {
		n += bytesPerMap
		for _, s := range m.setups {
			n += int64(s.pages) * bytesPerPTE
		}
	}
	return n
}

// Maps returns the number of VMAs in the template.
func (t *Template) Maps() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.maps)
}
