// Package prefetch replays recorded first-run working sets as batched
// remote fetches racing the invocation.
//
// TrEnv's RDMA path maps template pages invalid and fetches them
// lazily, so a cold start's critical path is a train of one-page-per-
// round-trip demand faults. The prefetcher removes most of them with
// two mechanisms layered on the page table's working-set machinery:
//
//   - Batched replay: the first run against a template records its
//     fault order into the image's pagetable.WorkingSetLog; every
//     later restore replays that log through mem.Pool.FetchBatch —
//     one doorbell round trip amortized over up to Config.BatchPages
//     pages — concurrently with execution. Replayed pages are marked
//     in flight (pagetable.AddressSpace.MarkInFlight), so a demand
//     fault that outruns its batch parks on the batch deadline instead
//     of issuing a duplicate fetch.
//   - Hot promotion: a run whose cross-invocation replay count crosses
//     Config.PromoteAfter moves into the node's capacity-bounded
//     direct-access cache (mem.PromotionCache, LRU): later attaches
//     redirect the run there (pagetable.AddressSpace.PromoteRange) and
//     repeat RDMA faults become CXL-cost direct hits.
//
// Everything is driven by engine virtual time and the engine rng, so
// same-seed runs with prefetch enabled stay byte-identical.
package prefetch

import (
	"strconv"
	"time"

	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Config tunes the prefetcher.
type Config struct {
	// BatchPages caps the pages covered by one doorbell-style batched
	// fetch (<= 0: DefaultBatchPages).
	BatchPages int
	// PromoteAfter is the cross-invocation replay count at which a run
	// is promoted into the direct-access cache (0 disables promotion).
	PromoteAfter int
}

// DefaultBatchPages is the doorbell batch size: 64 pages (256 KB)
// keeps a batch one work request while amortizing the round trip ~64x.
const DefaultBatchPages = 64

func (c Config) batchPages() int {
	if c.BatchPages <= 0 {
		return DefaultBatchPages
	}
	return c.BatchPages
}

// Summary reports what one restore's prefetch pass did, for spans and
// metrics. Recording passes set Recording and nothing else.
type Summary struct {
	// Recording marks the template's first run: the invocation records
	// the working-set log instead of replaying it.
	Recording bool
	// Batches/Pages count the batched fetches issued and the pages they
	// cover; Latency is the last batch's completion offset from launch
	// (batches pipeline on one queue, so it is also the total transfer
	// time the invocation races).
	Batches int
	Pages   int
	Latency time.Duration
	// Pool names the kind serving the most replayed pages.
	Pool string
	// PromotedPages counts pages redirected at the promotion cache
	// during this pass (already direct-access, not fetched).
	PromotedPages int
	// Err is the first batch failure (injected fault), after which the
	// replay stops and remaining pages fall back to demand faults.
	Err error
}

// Prefetcher replays working-set logs for one node and owns the node's
// promotion cache and per-run replay counts. It is engine-deterministic
// and must only be used from simulated processes.
type Prefetcher struct {
	cfg    Config
	cache  *mem.PromotionCache
	counts map[string]int // replays per promotion-run key
}

// New creates a prefetcher; cache may be nil to disable promotion even
// when Config.PromoteAfter is set.
func New(cache *mem.PromotionCache, cfg Config) *Prefetcher {
	return &Prefetcher{cfg: cfg, cache: cache, counts: make(map[string]int)}
}

// Cache returns the node's promotion cache (nil when promotion is off).
func (pf *Prefetcher) Cache() *mem.PromotionCache { return pf.cache }

// runKey names a recorded run for promotion accounting: the template's
// working set is rack-stable, so function/region/first identifies the
// same pages across restores.
func runKey(fn string, e pagetable.WSFetch) string {
	return fn + "/" + e.Region + "#" + strconv.Itoa(e.First)
}

// OnRestore runs the prefetch pass for one freshly restored instance.
// With an unsealed log it claims recording for the first run (attaching
// the recorder to the restored spaces); with a sealed log it replays
// the recorded runs as batched fetches racing the invocation, and
// promotes runs that crossed the promotion threshold. Returns nil when
// there is nothing to do (no log, or another instance is recording).
//
// The caller seals the log once the recording invocation completes.
func (pf *Prefetcher) OnRestore(p *sim.Proc, log *pagetable.WorkingSetLog, res *snapshot.Restored) *Summary {
	if pf == nil || log == nil || res == nil {
		return nil
	}
	// In-flight waits are charged against virtual time on every space
	// the prefetcher may touch, recording or replaying.
	res.SetClock(p.Engine().Now)
	if !log.Sealed() {
		if !log.StartRecording() {
			return nil // another first run is recording; run unassisted
		}
		res.SetWorkingSetLog(log)
		return &Summary{Recording: true}
	}
	sum := &Summary{}
	fn := res.Snapshot.Function
	now := p.Now()
	var cum time.Duration // batches pipeline on one queue pair
	poolPages := map[string]int{}
	for _, e := range log.Entries() {
		as, v := res.Region(e.Region)
		if as == nil {
			continue
		}
		// Promotion first: a hot-enough run moves to the direct-access
		// cache and needs no batch at all.
		if pf.cache != nil && pf.cfg.PromoteAfter > 0 {
			key := runKey(fn, e)
			pf.counts[key]++
			hot := pf.cache.Lookup(key) // touches LRU, counts the hit
			if !hot && pf.counts[key] >= pf.cfg.PromoteAfter {
				hot = pf.cache.Promote(key, e.Pages)
			}
			if hot {
				if n, err := as.PromoteRange(v, e.First, e.Pages, pf.cache.Pool()); err == nil {
					sum.PromotedPages += n
				}
				continue // promoted runs never batch-fetch
			}
		}
		pool := v.PoolAt(e.First)
		if pool == nil {
			continue
		}
		// Replay the run as doorbell batches. Each batch prices one
		// round trip plus streaming, retrying as a unit under the
		// pool's fault policy; a failed batch aborts the replay and
		// leaves the rest to demand faults.
		for off := 0; off < e.Pages; off += pf.cfg.batchPages() {
			n := pf.cfg.batchPages()
			if off+n > e.Pages {
				n = e.Pages - off
			}
			lazy := 0
			for i := e.First + off; i < e.First+off+n; i++ {
				if v.PageState(i) == pagetable.RemoteLazy {
					lazy++
				}
			}
			if lazy == 0 {
				continue // already resident (or promoted); nothing to move
			}
			d, _, err := pool.FetchBatch(p.Rand(), lazy)
			if err != nil {
				sum.Err = err
				break
			}
			cum += d
			marked, merr := as.MarkInFlight(v, e.First+off, n, now+cum)
			if merr != nil {
				sum.Err = merr
				break
			}
			if marked > 0 {
				sum.Batches++
				sum.Pages += marked
				poolPages[pool.Kind().String()] += marked
				// The batch occupies the pool's queue until it lands,
				// so concurrent demand fetches (and later batches of
				// this replay) see its contention.
				pool.BeginFetch()
				p.Engine().After(cum, pool.EndFetch)
			}
		}
		if sum.Err != nil {
			break
		}
	}
	sum.Latency = cum
	best := 0
	for kind, n := range poolPages {
		if n > best || (n == best && kind < sum.Pool) {
			best = n
			sum.Pool = kind
		}
	}
	return sum
}
