#!/usr/bin/env sh
# bench-compare.sh — regression-gate a fresh selfbench artifact against
# the committed baseline.
#
#   sh scripts/bench-compare.sh BENCH_pr6.json fresh.json
#
# Thin wrapper over cmd/trenv-diff, which applies the same gates this
# script used to hand-roll in awk: two `trenv-bench -selfbench` reports
# (schema trenv-selfbench/v1) fail the comparison when the fresh run
# shows
#
#   - events_per_sec        below baseline by more than TRENV_EVENTS_TOL
#   - invocations_per_sec   below baseline by more than TRENV_EVENTS_TOL
#   - allocs_per_event      above baseline by more than TRENV_ALLOCS_TOL
#
# Tolerances are fractions (defaults: 0.30 throughput regression, 0.20
# allocation growth — wall-clock throughput varies across machines, so
# the band is wide; allocations per event are nearly machine-independent,
# so the band is tight). The two artifacts must agree on schema, seed,
# and scale — comparing different workloads is refused outright.
# trenv-diff additionally equality-gates the deterministic per-run work
# counts: count drift means the workload changed, which is a different
# failure than a slow host.
#
# Exit codes: 0 within tolerance, 1 regression or incomparable
# artifacts, 2 usage error or unreadable/malformed artifact.
set -u

TRENV_EVENTS_TOL="${TRENV_EVENTS_TOL:-0.30}"
TRENV_ALLOCS_TOL="${TRENV_ALLOCS_TOL:-0.20}"

if [ $# -ne 2 ]; then
    echo "usage: $0 baseline.json fresh.json" >&2
    exit 2
fi
baseline=$1
fresh=$2
for f in "$baseline" "$fresh"; do
    if [ ! -r "$f" ]; then
        echo "bench-compare: cannot read $f" >&2
        exit 2
    fi
done

# Resolve artifact paths before changing to the repo root so relative
# arguments keep working.
case "$baseline" in /*) ;; *) baseline="$PWD/$baseline" ;; esac
case "$fresh" in /*) ;; *) fresh="$PWD/$fresh" ;; esac
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

# Build then exec: `go run` flattens every non-zero exit to 1, which
# would erase trenv-diff's distinction between "regressed" (1) and
# "refuses comparison" (3).
bin=$(mktemp -t trenv-diff.XXXXXX)
trap 'rm -f "$bin"' EXIT
if ! (cd "$repo_root" && go build -o "$bin" ./cmd/trenv-diff); then
    echo "bench-compare: cannot build trenv-diff" >&2
    exit 2
fi

"$bin" -events-tol "$TRENV_EVENTS_TOL" -allocs-tol "$TRENV_ALLOCS_TOL" \
    "$baseline" "$fresh"
code=$?

case "$code" in
0)
    echo "bench-compare: ok ($fresh within tolerance of $baseline)"
    ;;
1)
    echo "bench-compare: FAILED ($fresh regressed against $baseline)" >&2
    ;;
3)
    # trenv-diff's "artifacts refuse comparison" code; this script's
    # historical contract reports that as a plain failure.
    echo "bench-compare: FAILED ($fresh is not comparable to $baseline)" >&2
    code=1
    ;;
*)
    echo "bench-compare: error comparing $fresh against $baseline" >&2
    code=2
    ;;
esac
exit "$code"
