#!/usr/bin/env sh
# bench-compare.sh — regression-gate a fresh selfbench artifact against
# the committed baseline.
#
#   sh scripts/bench-compare.sh BENCH_pr6.json fresh.json
#
# Reads the `aggregate` block of two `trenv-bench -selfbench` reports
# (schema trenv-selfbench/v1; field layout is part of the schema, so a
# JSON parser is not needed) and fails when the fresh run shows
#
#   - events_per_sec        below baseline by more than TRENV_EVENTS_TOL
#   - invocations_per_sec   below baseline by more than TRENV_EVENTS_TOL
#   - allocs_per_event      above baseline by more than TRENV_ALLOCS_TOL
#
# Tolerances are fractions (defaults: 0.30 throughput regression, 0.20
# allocation growth — wall-clock throughput varies across machines, so
# the band is wide; allocations per event are nearly machine-independent,
# so the band is tight). The two artifacts must agree on schema, seed,
# and scale — comparing different workloads is refused outright.
# obs_overhead_pct is reported but not gated (it is a noisy difference
# of two wall times).
set -u

TRENV_EVENTS_TOL="${TRENV_EVENTS_TOL:-0.30}"
TRENV_ALLOCS_TOL="${TRENV_ALLOCS_TOL:-0.20}"

if [ $# -ne 2 ]; then
    echo "usage: $0 baseline.json fresh.json" >&2
    exit 2
fi
baseline=$1
fresh=$2
for f in "$baseline" "$fresh"; do
    if [ ! -r "$f" ]; then
        echo "bench-compare: cannot read $f" >&2
        exit 2
    fi
done

# agg_field FILE KEY — value of KEY inside the top-level "aggregate"
# block (first match wins, search stops at the block's closing brace).
agg_field() {
    awk -v key="\"$2\"" '
        /"aggregate": \{/ { inagg = 1; next }
        inagg && /^  \}/ { exit }
        inagg && index($0, key ":") {
            v = $0
            sub(/^[^:]*: */, "", v)
            sub(/,$/, "", v)
            print v
            exit
        }' "$1"
}

# top_field FILE KEY — first occurrence of KEY in the file (top-level
# identity fields precede every nested block in the schema).
top_field() {
    awk -v key="\"$2\"" '
        index($0, key ":") {
            v = $0
            sub(/^[^:]*: */, "", v)
            sub(/,$/, "", v)
            gsub(/"/, "", v)
            print v
            exit
        }' "$1"
}

require() { # NAME VALUE FILE
    if [ -z "$2" ]; then
        echo "bench-compare: $3 has no $1 field (not a selfbench artifact?)" >&2
        exit 2
    fi
}

fail=0

for key in schema seed scale; do
    b=$(top_field "$baseline" "$key")
    f=$(top_field "$fresh" "$key")
    require "$key" "$b" "$baseline"
    require "$key" "$f" "$fresh"
    if [ "$b" != "$f" ]; then
        echo "FAIL $key mismatch: baseline $b vs fresh $f (artifacts are not comparable)" >&2
        fail=1
    fi
done
[ "$fail" -eq 0 ] || exit 1

# gate NAME MODE TOL — MODE is `floor` (fail when fresh drops below
# baseline*(1-TOL)) or `ceil` (fail when fresh rises above
# baseline*(1+TOL)).
gate() {
    name=$1 mode=$2 tol=$3
    b=$(agg_field "$baseline" "$name")
    f=$(agg_field "$fresh" "$name")
    require "$name" "$b" "$baseline"
    require "$name" "$f" "$fresh"
    awk -v b="$b" -v f="$f" -v tol="$tol" -v name="$name" -v mode="$mode" 'BEGIN {
        if (b <= 0) { printf "ok   %-22s baseline %.4g not gateable\n", name, b; exit 0 }
        if (mode == "floor") {
            bound = b * (1 - tol)
            bad = (f < bound)
            rel = (f - b) / b * 100
            word = "floor"
        } else {
            bound = b * (1 + tol)
            bad = (f > bound)
            rel = (f - b) / b * 100
            word = "ceiling"
        }
        if (bad) {
            printf "FAIL %-22s %.4g vs baseline %.4g (%+.1f%%, %s %.4g)\n", name, f, b, rel, word, bound
            exit 1
        }
        printf "ok   %-22s %.4g vs baseline %.4g (%+.1f%%, %s %.4g)\n", name, f, b, rel, word, bound
    }' || fail=1
}

gate events_per_sec floor "$TRENV_EVENTS_TOL"
gate invocations_per_sec floor "$TRENV_EVENTS_TOL"
gate allocs_per_event ceil "$TRENV_ALLOCS_TOL"

echo "info obs_overhead_pct       baseline $(agg_field "$baseline" obs_overhead_pct) vs fresh $(agg_field "$fresh" obs_overhead_pct) (not gated)"

if [ "$fail" -ne 0 ]; then
    echo "bench-compare: FAILED ($fresh regressed against $baseline)" >&2
    exit 1
fi
echo "bench-compare: ok ($fresh within tolerance of $baseline)"
