#!/usr/bin/env sh
# Documentation drift checks, run in CI:
#   1. every internal package (and the root package) carries a godoc
#      package comment ("// Package <name> ...");
#   2. every HTTP route cmd/trenvd registers appears in README.md's
#      endpoint table;
#   3. every flag cmd/trenv-bench defines appears in EXPERIMENTS.md's
#      flag table;
#   4. every flag cmd/trenvd defines appears in README.md's trenvd
#      flag list, and every trenv-bench flag in README.md's
#      trenv-bench flag table;
#   5. every flag cmd/trenv-trace defines appears in its own command
#      comment (the godoc usage block);
#   6. every flag cmd/trenv-diff defines appears in README.md's
#      trenv-diff flag table;
#   7. ARCHITECTURE.md carries the "Engine internals & sharding"
#      chapter and the shard-count-invariance determinism paragraph;
#   8. every committed BENCH_*.json baseline appears in EXPERIMENTS.md's
#      "Regenerating baselines" section.
# Exits non-zero listing everything that is missing.
set -eu

cd "$(dirname "$0")/.."
fail=0

for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -l "^// Package $pkg " "$dir"*.go >/dev/null 2>&1; then
        echo "missing package comment: $dir (want '// Package $pkg ...')" >&2
        fail=1
    fi
done
if ! grep -q "^// Package trenv " trenv.go; then
    echo "missing package comment on the root facade (trenv.go)" >&2
    fail=1
fi
for dir in cmd/*/; do
    if ! grep -qh "^// Command $(basename "$dir") " "$dir"*.go; then
        echo "missing command comment: $dir (want '// Command $(basename "$dir") ...')" >&2
        fail=1
    fi
done

endpoints=$(sed -n 's/.*mux.HandleFunc("\(GET\|POST\) \([^"]*\)".*/\1 \2/p' cmd/trenvd/main.go | sort -u)
[ -n "$endpoints" ] || { echo "found no routes in cmd/trenvd/main.go" >&2; exit 1; }
echo "$endpoints" | while read -r method path; do
    if ! grep -q "\`$method $path\`" README.md; then
        echo "trenvd endpoint undocumented in README.md: $method $path" >&2
        touch .docs-check-failed
    fi
done

flags=$(sed -n 's/.*flag\.\(Bool\|String\|Int64\|Int\|Float64\|Duration\)("\([a-z-]*\)".*/\2/p' cmd/trenv-bench/main.go | sort -u)
[ -n "$flags" ] || { echo "found no flags in cmd/trenv-bench/main.go" >&2; exit 1; }
for f in $flags; do
    case "$f" in list) continue ;; esac # -list is usage plumbing, not an experiment knob
    if ! grep -q -- "-$f" EXPERIMENTS.md; then
        echo "trenv-bench flag undocumented in EXPERIMENTS.md: -$f" >&2
        fail=1
    fi
done
for f in $flags; do
    case "$f" in list) continue ;; esac
    if ! grep -q -- "\`-$f" README.md; then
        echo "trenv-bench flag undocumented in README.md: -$f" >&2
        fail=1
    fi
done

dflags=$(sed -n 's/.*flag\.\(Bool\|String\|Int64\|Int\|Float64\|Duration\)("\([a-z-]*\)".*/\2/p' cmd/trenvd/main.go | sort -u)
[ -n "$dflags" ] || { echo "found no flags in cmd/trenvd/main.go" >&2; exit 1; }
for f in $dflags; do
    if ! grep -q -- "\`-$f\`" README.md; then
        echo "trenvd flag undocumented in README.md: -$f" >&2
        fail=1
    fi
done

tflags=$(sed -n 's/.*flag\.\(Bool\|String\|Int64\|Int\|Float64\|Duration\)("\([a-z-]*\)".*/\2/p' cmd/trenv-trace/main.go | sort -u)
[ -n "$tflags" ] || { echo "found no flags in cmd/trenv-trace/main.go" >&2; exit 1; }
for f in $tflags; do
    if ! grep "^//" cmd/trenv-trace/main.go | grep -q -- "-$f"; then
        echo "trenv-trace flag undocumented in its command comment: -$f" >&2
        fail=1
    fi
done

# trenv-diff declares flags on a flag.FlagSet (fs.Float64 etc.), so the
# pattern matches any receiver, not just the package-level flag.X form.
gflags=$(sed -n 's/.*\.\(Bool\|String\|Int64\|Int\|Float64\|Duration\)("\([a-z-]*\)".*/\2/p' cmd/trenv-diff/main.go | sort -u)
[ -n "$gflags" ] || { echo "found no flags in cmd/trenv-diff/main.go" >&2; exit 1; }
for f in $gflags; do
    if ! grep -q -- "\`-$f" README.md; then
        echo "trenv-diff flag undocumented in README.md: -$f" >&2
        fail=1
    fi
done

for heading in '## Engine internals & sharding' '### The scheduler contract' '### Shards, horizons, and the exchange'; do
    if ! grep -q "^$heading" ARCHITECTURE.md; then
        echo "ARCHITECTURE.md missing section: $heading" >&2
        fail=1
    fi
done
if ! grep -q 'shard-count' ARCHITECTURE.md; then
    echo "ARCHITECTURE.md determinism contract missing the shard-count-invariance paragraph" >&2
    fail=1
fi

if ! grep -q '^## Regenerating baselines' EXPERIMENTS.md; then
    echo "EXPERIMENTS.md missing section: ## Regenerating baselines" >&2
    fail=1
fi
for b in BENCH_*.json; do
    [ -e "$b" ] || continue
    if ! grep -q "$b" EXPERIMENTS.md; then
        echo "committed baseline undocumented in EXPERIMENTS.md: $b" >&2
        fail=1
    fi
done

if [ -e .docs-check-failed ]; then
    rm -f .docs-check-failed
    fail=1
fi
exit $fail
