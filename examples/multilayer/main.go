// Multilayer: the hot/cold memory architecture of §3.1 — consolidated
// images split between a small byte-addressable CXL tier and a large
// RDMA tier, plus frequency-based promotion between them.
//
//	go run ./examples/multilayer
package main

import (
	"fmt"
	"math/rand"
	"time"

	trenv "repro"
	"repro/internal/mem"
	"repro/internal/workload"
)

func main() {
	// Part 1: run the container platform with progressively less CXL
	// (the tail of each image spills to RDMA).
	var names []string
	for _, fn := range trenv.Functions() {
		names = append(names, fn.Name)
	}
	cfgW1 := workload.DefaultW1(names)
	cfgW1.Duration = 8 * time.Minute
	cfgW1.BurstGap = 3 * time.Minute
	tr := workload.W1Bursty(rand.New(rand.NewSource(3)), cfgW1)

	fmt.Println("hot-fraction sweep (W1 bursty, fresh starts each burst):")
	for _, frac := range []float64{1.0, 0.5, 0.25} {
		cfg := trenv.DefaultContainerConfig(trenv.TrEnvCXL)
		cfg.KeepAlive = 2 * time.Minute
		cfg.HotFraction = frac
		pl := trenv.NewContainerPlatform(cfg)
		for _, fn := range trenv.Functions() {
			pl.Register(fn)
		}
		pl.RunTrace(tr)
		cxl, rdma, _ := pl.PoolUsage()
		fmt.Printf("  %.0f%% on CXL: e2e p99=%7.1fms  pool split cxl=%.2fGB rdma=%.2fGB\n",
			frac*100, pl.Metrics().All.E2E.Percentile(99),
			float64(cxl)/(1<<30), float64(rdma)/(1<<30))
	}

	// Part 2: the tier manager — blocks earn CXL residency by access
	// frequency under a byte budget.
	fmt.Println("\ntier manager (40 MB hot budget, blocks promoted by heat):")
	lat := mem.DefaultLatencyModel()
	hot := mem.NewPool(mem.CXL, 0, lat)
	cold := mem.NewPool(mem.RDMA, 0, lat)
	m, err := mem.NewTierManager(hot, cold, 40<<20)
	if err != nil {
		panic(err)
	}
	blocks := map[string]int{"python-runtime": 4500, "numpy": 3000, "rarely-used-lib": 6000}
	for k, pages := range blocks {
		if err := m.Place(k, pages); err != nil {
			panic(err)
		}
	}
	m.RecordAccess("python-runtime", 500) // every invocation touches it
	m.RecordAccess("numpy", 120)
	m.RecordAccess("rarely-used-lib", 3)
	copyTime, err := m.Rebalance(1 << 30)
	if err != nil {
		panic(err)
	}
	for k := range blocks {
		tier, _ := m.TierOf(k)
		fmt.Printf("  %-16s -> %s\n", k, tier)
	}
	fmt.Printf("  rebalance moved data in %v (off the critical path)\n", copyTime.Round(time.Millisecond))
}
