// Multinode: a three-node rack attached to one shared CXL pool. The
// consolidated function images and their mm-templates exist once per
// rack; instances on every node attach to the same read-only pages
// (§8.2's rack-level deployment).
//
//	go run ./examples/multinode
package main

import (
	"fmt"
	"math/rand"
	"time"

	trenv "repro"
	"repro/internal/workload"
)

func main() {
	cluster, err := trenv.NewCluster(3, trenv.DefaultContainerConfig(trenv.TrEnvCXL))
	if err != nil {
		panic(err)
	}
	var names []string
	for _, fn := range trenv.Functions() {
		if err := cluster.Register(fn); err != nil {
			panic(err)
		}
		names = append(names, fn.Name)
	}

	var logical int64
	for _, fn := range trenv.Functions() {
		logical += fn.MemBytes
	}
	poolGB := float64(cluster.Pool().Tracker().Used()) / (1 << 30)
	fmt.Printf("registered %d functions on 3 nodes\n", len(names))
	fmt.Printf("  sum of images:        %6.2f GB per node without sharing\n", float64(logical)/(1<<30))
	fmt.Printf("  shared CXL pool use:  %6.2f GB for the whole rack\n", poolGB)
	fmt.Printf("  content dedup factor: %6.2fx (shared runtimes/libs)\n", cluster.DedupFactor())
	fmt.Printf("  rack-level saving:    %6.2fx (3 nodes x images / pool)\n\n",
		3*float64(logical)/(1<<30)/poolGB)

	// Drive a bursty workload across the rack; dispatch prefers warm
	// nodes and otherwise spreads by load.
	cfg := workload.W1Config{
		Functions: names,
		Duration:  4 * time.Minute,
		BurstGap:  2 * time.Minute,
		BurstSize: 8,
		BurstSpan: 2 * time.Second,
	}
	tr := workload.W1Bursty(rand.New(rand.NewSource(7)), cfg)
	cluster.RunTrace(tr)

	fmt.Printf("ran %d invocations across the rack:\n", cluster.Invocations())
	for i, node := range cluster.Nodes() {
		m := node.Metrics()
		fmt.Printf("  node%d: %4d invocations, warm=%3d repurposed=%3d, e2e p99=%7.1fms, peak mem=%5.2f GB\n",
			i, m.Invocations(), m.WarmHits.Value(), m.Repurposes.Value(),
			m.All.E2E.Percentile(99), float64(node.PeakMemory())/(1<<30))
	}

	img := cluster.Nodes()[0].Store().Image("JS")
	var attaches int64
	for _, tpl := range img.Templates {
		attaches += tpl.Attaches()
	}
	fmt.Printf("\nJS's mm-template was attached %d times against the single\n", attaches)
	fmt.Println("consolidated image in the shared CXL pool; pool offsets are")
	fmt.Println("machine independent, so any node's attach resolves the same pages.")
}
