// Agentfarm: run a fleet of browser-driven LLM agents overcommitted onto
// 20 physical cores and compare E2B against TrEnv with browser sharing
// and the virtio-pmem page-cache fix (§6, §9.6).
//
//	go run ./examples/agentfarm
package main

import (
	"fmt"
	"time"

	trenv "repro"
)

const fleet = 80

func main() {
	blog, err := trenv.AgentByName("blog-summary")
	if err != nil {
		panic(err)
	}
	fmt.Printf("agent %s (%s): %q\n", blog.Name, blog.Framework, blog.Description)
	fmt.Printf("  solo e2e=%v, cpu=%v (utilization %.0f%%), browser tabs=%d\n\n",
		blog.TotalE2E().Round(time.Second), blog.TotalCPU().Round(time.Second),
		100*blog.CPUUtilization(), blog.Tabs)

	fmt.Printf("launching %d instances on 20 cores:\n\n", fleet)
	for _, policy := range []trenv.AgentPolicy{trenv.E2B, trenv.E2BPlus, trenv.TrEnvVM, trenv.TrEnvVMShared} {
		pl, err := trenv.NewAgentPlatform(trenv.DefaultAgentConfig(policy))
		if err != nil {
			panic(err)
		}
		for i := 0; i < fleet; i++ {
			pl.Launch(time.Duration(i)*100*time.Millisecond, blog)
		}
		pl.Run()
		m := pl.Metrics(blog.Name)
		fmt.Printf("%-8s e2e mean=%6.1fs p99=%6.1fs   startup p99=%6.0fms   peak mem=%6.2f GB\n",
			policy, m.E2E.Mean()/1000, m.E2E.Percentile(99)/1000,
			m.Startup.Percentile(99), float64(pl.PeakMemory())/(1<<30))
	}

	fmt.Println("\ntrenv-s shares one browser across up to 10 agents and keeps one")
	fmt.Println("host page-cache copy of the read-only base image, so both the")
	fmt.Println("CPU spikes and the duplicated caches of e2b disappear.")
}
