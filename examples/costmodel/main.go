// Costmodel: the §2.3 cost study. For each Table 2 agent, compare the
// serverless infrastructure bill (Eq. 2) against the LLM API bill
// (Eq. 1), then show what high-density TrEnv deployment does to the
// serverless side.
//
//	go run ./examples/costmodel
package main

import (
	"fmt"
	"time"

	trenv "repro"
)

func main() {
	pr := trenv.DefaultPricing()
	fmt.Printf("pricing: $%.2f/M input tok, $%.2f/M output tok, $%.3g/ms/GB serverless\n\n",
		pr.InPerToken*1e6, pr.OutPerToken*1e6, pr.ServerlessPerGBms)

	fmt.Printf("%-15s %10s %10s %10s %9s\n", "agent", "LLM $", "serverless $", "relative", "e2e")
	var llmTotal, svTotal float64
	for _, a := range trenv.Agents() {
		llm := trenv.LLMCost(a, pr)
		sv := trenv.ServerlessCost(a, pr)
		llmTotal += llm
		svTotal += sv
		fmt.Printf("%-15s %10.5f %10.5f %9.1f%% %9s\n",
			a.Name, llm, sv, 100*sv/llm, a.TotalE2E().Round(time.Second))
	}
	fmt.Printf("%-15s %10.5f %10.5f %9.1f%%\n\n", "TOTAL", llmTotal, svTotal, 100*svTotal/llmTotal)

	// What high-density deployment buys: if TrEnv's memory savings let
	// the provider overcommit agents 3x on the same hardware, the
	// effective per-agent infrastructure cost drops accordingly — run the
	// blog-summary fleet and compare measured memory.
	blog, _ := trenv.AgentByName("blog-summary")
	peak := func(pol trenv.AgentPolicy) float64 {
		pl, err := trenv.NewAgentPlatform(trenv.DefaultAgentConfig(pol))
		if err != nil {
			panic(err)
		}
		for i := 0; i < 40; i++ {
			pl.Launch(time.Duration(i)*200*time.Millisecond, blog)
		}
		pl.Run()
		return float64(pl.PeakMemory()) / (1 << 30)
	}
	e2b := peak(trenv.E2B)
	tr := peak(trenv.TrEnvVMShared)
	fmt.Printf("40 blog-summary agents: e2b peak=%.2f GB, trenv-s peak=%.2f GB\n", e2b, tr)
	fmt.Printf("=> %.1fx more agents per GB of DRAM, i.e. the %.0f%% serverless\n",
		e2b/tr, 100*svTotal/llmTotal)
	fmt.Printf("   share above shrinks toward %.0f%% at equal hardware cost.\n",
		100*svTotal/llmTotal*tr/e2b)
}
