// Quickstart: deploy one function and compare TrEnv's repurpose+attach
// startup path against a plain CRIU restore and a cold start.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	trenv "repro"
)

func main() {
	js, err := trenv.FunctionByName("JS")
	if err != nil {
		panic(err)
	}
	fmt.Printf("function %s: %q, %d MB image, %d threads\n\n",
		js.Name, js.Description, js.MemBytes>>20, js.Threads)

	for _, policy := range []trenv.ContainerPolicy{trenv.Faasd, trenv.CRIU, trenv.TrEnvCXL} {
		pl := trenv.NewContainerPlatform(trenv.DefaultContainerConfig(policy))
		if err := pl.Register(js); err != nil {
			panic(err)
		}
		// Three rounds spaced past a short keep-alive window so every
		// round takes a fresh (non-warm) start; under TrEnv the expired
		// instance's sandbox lands in the universal pool and rounds 2-3
		// go through repurpose + mm-template attach.
		cfg := trenv.DefaultContainerConfig(policy)
		cfg.KeepAlive = 5 * time.Second
		pl = trenv.NewContainerPlatform(cfg)
		pl.Register(js)
		for i := 0; i < 3; i++ {
			pl.Invoke(time.Duration(i)*30*time.Second, "JS")
		}
		pl.Engine().Run()

		m := pl.Metrics().Fn("JS")
		fmt.Printf("%-10s startup: first=%7.1fms steady=%7.1fms   e2e p99=%7.1fms\n",
			policy, m.Startup.Max(), m.Startup.Min(), m.E2E.Percentile(99))
	}

	fmt.Println("\nTrEnv's steady-state startup is the repurposed-sandbox +")
	fmt.Println("mm-template path: ~milliseconds instead of a full sandbox")
	fmt.Println("build plus a ~100 MB memory copy.")
}
